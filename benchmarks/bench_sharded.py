"""Benchmark — sharded parallel execution vs serial on the fig-7 workloads.

Times the full prepared-session pipeline (plan + bind + TSens, and the
count-only evaluation) once serially (``workers=1``) and once sharded
(``workers=N``), per TPC-H workload, at the raised default scale.  Exact
agreement between the two executions is asserted on every run — sharding
is a pure execution strategy and must never change a count, a sensitivity,
or a witness.

The speedup assertion (sharded ≥ 2× serial on at least one workload) only
runs on machines with enough cores to honestly measure it; a single-core
container cannot, and says so instead of failing.

The module doubles as a standalone script that records the sharded
trajectory for :mod:`benchmarks.trend`::

    PYTHONPATH=src python benchmarks/bench_sharded.py --backend columnar --workers 2

writes ``benchmarks/BENCH_<backend>_w<N>.json`` (payload ``backend`` key
``"<backend>_w<N>"``), which ``trend.py`` renders as an extra column next
to the serial backends.
"""

import os

import pytest

from repro.session import prepare
from repro.workloads import q1_workload, q2_workload, q3_workload

WORKLOADS = {
    "q1": q1_workload(),
    "q2": q2_workload(),
    "q3": q3_workload(),
}

#: Worker count for the pytest-mode sharded timings (script mode takes
#: ``--workers``).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _witness_key(result):
    witness = result.witness
    if witness is None:
        return None
    return (witness.relation, tuple(sorted(witness.assignment.items())),
            witness.sensitivity)


def _run_workload(workload, db, workers):
    """Fresh session per call: count + TSens, the fig-7 hot path."""
    with prepare(workload.query, db, tree=workload.tree,
                 workers=workers) as session:
        count = session.count()
        result = session.sensitivity(skip_relations=workload.skip_relations)
    return count, result


def _assert_agreement(name, serial, sharded):
    s_count, s_result = serial
    p_count, p_result = sharded
    assert p_count == s_count, (
        f"{name}: sharded count {p_count} != serial {s_count}"
    )
    assert p_result.local_sensitivity == s_result.local_sensitivity, (
        f"{name}: sharded sensitivity {p_result.local_sensitivity} "
        f"!= serial {s_result.local_sensitivity}"
    )
    assert _witness_key(p_result) == _witness_key(s_result), (
        f"{name}: sharded witness {_witness_key(p_result)} "
        f"!= serial {_witness_key(s_result)}"
    )


# ------------------------------------------------------------- pytest mode
@pytest.mark.parametrize("name", list(WORKLOADS))
def test_sharded_agreement(tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    _assert_agreement(
        name,
        _run_workload(workload, db, workers=1),
        _run_workload(workload, db, workers=BENCH_WORKERS),
    )


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_sharded_tsens_time(benchmark, tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    benchmark.pedantic(
        lambda: _run_workload(workload, db, workers=BENCH_WORKERS),
        rounds=3,
        iterations=1,
    )


#: Scale for the gated speedup measurement — large enough that the heavy
#: fig-7 join takes whole seconds serially, so the parallel fraction
#: dominates process overheads.
SPEEDUP_SCALE = float(os.environ.get("REPRO_SPEEDUP_SCALE", "0.2"))


def _kernel_speedup(backend, scale, seed, workers, rounds=3):
    """Serial vs sharded wall time of the fig-7 hot-spot join.

    Lineitem ⋈ Partsupp → γ_SK is the heavy co-partitioned join inside
    the fig-7 TPC-H queries, with a small aggregated output: the
    coordinator's share of the sharded run is one memcpy per operand and
    a tiny regroup, so this is the shape sharding exists for.  Exact bag
    equality between the two outputs is asserted before timing.
    """
    from repro.datasets import generate_tpch
    from repro.engine import operators as ops
    from repro.engine.parallel import ParallelContext

    base = generate_tpch(scale, seed=seed, backend=backend)
    left, right = base["Lineitem"], base["Partsupp"]

    def serial_run():
        return ops.group_by(ops.join(left, right), ["SK"])

    serial_out = serial_run()
    serial = _best_of(serial_run, rounds)
    with ParallelContext(workers) as context:
        sharded_out = context.join(left, right, group=["SK"])
        assert ops.symmetric_difference_size(serial_out, sharded_out) == 0, (
            "sharded join+group disagrees with serial"
        )
        sharded = _best_of(
            lambda: context.join(left, right, group=["SK"]), rounds
        )
    return serial, sharded


@pytest.mark.skipif(
    _cores() < 4,
    reason="speedup assertion needs >= 4 cores for an honest measurement",
)
def test_sharded_speedup_fig7(backend):
    """Sharded execution is >= 2x serial on the fig-7 hot-spot join."""
    if backend != "columnar":
        pytest.skip(
            "sharded speedup is a columnar-engine claim; the python "
            "backend exists for semantics, not speed"
        )
    workers = min(_cores(), 4)
    serial, sharded = _kernel_speedup(backend, SPEEDUP_SCALE, 0, workers)
    speedup = serial / max(sharded, 1e-9)
    assert speedup >= 2.0, (
        f"fig-7 hot-spot join: sharded ({workers} workers) is only "
        f"{speedup:.2f}x serial at scale {SPEEDUP_SCALE} (need >= 2x)"
    )


# --------------------------------------------------------------- script mode
def _best_of(fn, rounds):
    import time

    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_comparison(backend, workers, scale, seed, rounds):
    """Serial vs sharded wall times per workload, with agreement checks."""
    from repro.datasets import generate_tpch

    base = generate_tpch(scale, seed=seed, backend=backend)
    results = {}
    for name, workload in WORKLOADS.items():
        db = workload.prepared(base)
        serial_out = _run_workload(workload, db, workers=1)
        sharded_out = _run_workload(workload, db, workers=workers)
        _assert_agreement(name, serial_out, sharded_out)
        results[name] = {
            "serial_seconds": _best_of(
                lambda: _run_workload(workload, db, 1), rounds
            ),
            "sharded_seconds": _best_of(
                lambda: _run_workload(workload, db, workers), rounds
            ),
        }
        results[name]["speedup"] = (
            results[name]["serial_seconds"]
            / max(results[name]["sharded_seconds"], 1e-9)
        )
    return results


def write_bench_report(path, backend, workers, scale, seed, results):
    """Merge sharded timings into BENCH_<backend>_w<N>.json for trend.py."""
    import json

    timings = {}
    if path.exists():
        try:
            timings = json.loads(path.read_text()).get("timings_seconds", {})
        except (ValueError, OSError):
            timings = {}
    for name, entry in results.items():
        timings[f"bench_sharded.py::{name}::tsens"] = round(
            entry["sharded_seconds"], 6
        )
    payload = {
        "backend": f"{backend}_w{workers}",
        "workers": workers,
        "tpch_scale": scale,
        "seed": seed,
        "timings_seconds": dict(sorted(timings.items())),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


if __name__ == "__main__":
    import argparse
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import SEED, TPCH_SCALE

    parser = argparse.ArgumentParser(
        description="Sharded vs serial fig-7 runtimes with exactness checks."
    )
    parser.add_argument(
        "--backend", default="columnar", choices=("python", "columnar")
    )
    parser.add_argument("--workers", type=int, default=BENCH_WORKERS)
    parser.add_argument("--scale", type=float, default=TPCH_SCALE)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--speedup-scale", type=float, default=SPEEDUP_SCALE,
        help="scale for the hot-spot join speedup measurement",
    )
    parser.add_argument(
        "--no-report", action="store_true",
        help="skip writing benchmarks/BENCH_<backend>_w<N>.json",
    )
    args = parser.parse_args()

    cores = _cores()
    print(
        f"sharded bench  backend={args.backend}  workers={args.workers}"
        f"  scale={args.scale}  seed={args.seed}  cores={cores}"
    )
    results = run_comparison(
        args.backend, args.workers, args.scale, args.seed, args.rounds
    )
    for name, entry in results.items():
        print(
            f"  {name}: serial={entry['serial_seconds']*1e3:8.2f}ms"
            f"  sharded={entry['sharded_seconds']*1e3:8.2f}ms"
            f"  speedup={entry['speedup']:.2f}x"
        )
    print("  exact agreement: count, sensitivity, witness — all workloads")

    if not args.no_report:
        out = Path(__file__).resolve().parent / (
            f"BENCH_{args.backend}_w{args.workers}.json"
        )
        write_bench_report(
            out, args.backend, args.workers, args.scale, args.seed, results
        )
        print(f"wrote {out}")

    if cores >= 4 and args.backend == "columnar":
        workers = min(cores, 4)
        serial, sharded = _kernel_speedup(
            args.backend, args.speedup_scale, args.seed, workers, args.rounds
        )
        speedup = serial / max(sharded, 1e-9)
        print(
            f"  hot-spot join (scale {args.speedup_scale}, {workers} workers):"
            f" serial={serial*1e3:.0f}ms sharded={sharded*1e3:.0f}ms"
            f" speedup={speedup:.2f}x"
        )
        assert speedup >= 2.0, (
            f"fig-7 hot-spot join: sharded is only {speedup:.2f}x serial "
            "(need >= 2x)"
        )
        print(f"  speedup assertion passed ({speedup:.2f}x >= 2x)")
    else:
        print(
            f"  speedup assertion skipped: needs >= 4 cores (have {cores}) "
            "and the columnar backend"
        )
