"""Re-evaluation baseline: local sensitivity via repeated Yannakakis runs.

Sections 4.1/5.2 of the paper discuss the natural alternative to TSens:
re-run a (near-linear) count-only Yannakakis evaluation once per candidate
tuple deletion/insertion.  This matches the naive algorithm of Theorem 3.1
but uses the efficient evaluator per probe; the paper estimates it at
``×10k+`` the cost of TSens on its workloads.  We expose it both as a
correctness cross-check and as the runtime strawman for the ablation bench.

Unlike :mod:`repro.core.naive` (which enumerates the full representative
domain as Definition 3.1 prescribes) this baseline supports *sampling* a
bounded number of insertion candidates, so its runtime can be measured on
databases where full enumeration is hopeless.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.evaluation.yannakakis import bind, count_bound
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import auto_decompose
from repro.query.jointree import DecompositionTree
from repro.core.result import SensitiveTuple, SensitivityResult


def reevaluation_sensitivity(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    max_probes_per_relation: Optional[int] = None,
    include_insertions: bool = True,
    seed: int = 0,
) -> SensitivityResult:
    """Local sensitivity via one count re-evaluation per candidate tuple.

    Parameters
    ----------
    query, db:
        The query and instance.
    tree:
        Decomposition used by every evaluation (defaults to automatic).
    max_probes_per_relation:
        When set, probe at most this many deletion and insertion candidates
        per relation, sampled uniformly without replacement.  The result is
        then a *lower* bound on the local sensitivity — the bench uses this
        mode purely to extrapolate runtime, never for accuracy claims.
    include_insertions:
        Probe representative-domain insertions in addition to deletions.
    """
    query.validate_against(db)
    if tree is None:
        tree = auto_decompose(query)
    rng = np.random.default_rng(seed)
    base = count_bound(bind(query, tree, db))

    per_relation = {}
    for relation in query.relation_names:
        atom = query.atom(relation)
        candidates = []
        for row in db.relation(relation):
            candidates.append(("del", row))
        if include_insertions:
            for row in db.representative_tuples(relation):
                candidates.append(("ins", row))
        if max_probes_per_relation is not None and len(candidates) > max_probes_per_relation:
            picks = rng.choice(len(candidates), size=max_probes_per_relation, replace=False)
            candidates = [candidates[i] for i in sorted(picks)]
        best_delta, best_row = 0, None
        for kind, row in candidates:
            if kind == "del":
                probe = db.remove_tuple(relation, row)
                delta = base - count_bound(bind(query, tree, probe))
            else:
                probe = db.add_tuple(relation, row)
                delta = count_bound(bind(query, tree, probe)) - base
            if delta > best_delta:
                best_delta, best_row = delta, row
        if best_row is None:
            per_relation[relation] = SensitiveTuple(relation, {}, 0)
        else:
            assignment = dict(zip(atom.variables, best_row))
            per_relation[relation] = SensitiveTuple(relation, assignment, best_delta)

    local = max((w.sensitivity for w in per_relation.values()), default=0)
    witness = None
    if local > 0:
        witness = next(w for w in per_relation.values() if w.sensitivity == local)
    method = "reeval" if max_probes_per_relation is None else "reeval-sampled"
    return SensitivityResult(
        query_name=query.name,
        method=method,
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables={},
    )
