#!/usr/bin/env python
"""Query explanation: which tuple matters most to a join result?

The paper's introduction motivates local sensitivity beyond privacy: an
airline wants the flight whose addition would create the most new
multi-city itineraries; a manufacturer wants the part whose failure would
cancel the most orders.  This example plays out the airline scenario with a
three-hop connecting-flight query and shows how the multiplicity tables
answer both the "what if we add" and "what if we lose" questions.

Run with::

    python examples/query_explanation.py
"""

from repro import prepare
from repro.engine import Database, Relation
from repro.query import parse_query


def main() -> None:
    # Legs(origin, hub1), Legs2(hub1, hub2), Legs3(hub2, destination):
    # itineraries are rows of the 3-way join.
    query = parse_query(
        "Trips(SRC, H1, H2, DST) :- Leg1(SRC, H1), Leg2(H1, H2), Leg3(H2, DST)"
    )
    leg1 = [
        ("SFO", "DEN"), ("SFO", "ORD"), ("LAX", "DEN"), ("SEA", "DEN"),
        ("SAN", "ORD"), ("PDX", "DEN"),
    ]
    leg2 = [
        ("DEN", "JFK"), ("DEN", "BOS"), ("ORD", "JFK"), ("DEN", "JFK"),
    ]
    leg3 = [
        ("JFK", "LHR"), ("JFK", "CDG"), ("BOS", "LHR"), ("JFK", "FRA"),
    ]
    db = Database(
        {
            "Leg1": Relation(["SRC", "H1"], leg1),
            "Leg2": Relation(["H1", "H2"], leg2),
            "Leg3": Relation(["H2", "DST"], leg3),
        }
    )
    session = prepare(query, db)
    print(f"connecting itineraries today: {session.count()}\n")

    result = session.sensitivity()
    witness = result.witness
    print(
        f"most impactful single flight: {witness.relation} "
        f"{dict(witness.assignment)}"
    )
    print(
        f"adding (or losing) it changes the itinerary count by "
        f"{witness.sensitivity} — the local sensitivity of the query\n"
    )

    print("impact of each candidate middle leg (Leg2 h1→h2):")
    table = result.table("Leg2")
    for h1 in sorted(db.relation("Leg1").column_values("H1")):
        for h2 in sorted(db.relation("Leg3").column_values("H2")):
            impact = table.sensitivity_of({"H1": h1, "H2": h2})
            exists = (h1, h2) in db.relation("Leg2")
            marker = "existing" if exists else "candidate"
            if impact:
                print(f"  {h1} → {h2}: ±{impact} itineraries ({marker})")

    print(
        "\nreading: candidate legs are *upward* sensitivities (what a new"
        "\nflight would unlock); existing legs are *downward* (what a"
        "\ncancellation would destroy). One multiplicity table gives both."
    )

    # The airline schedules the most impactful flight: commit it to the
    # session, which maintains the itinerary count without replanning.
    row = witness.as_row(query.atom(witness.relation).variables)
    after = session.insert(witness.relation, row)
    print(
        f"\nafter scheduling {witness.relation} {row}: "
        f"{after} itineraries ({witness.sensitivity:+d})"
    )


if __name__ == "__main__":
    main()
