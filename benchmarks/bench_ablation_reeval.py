"""Ablation — TSens vs naive re-evaluation (the Sec. 7.2 "×10k+" claim).

Compares the cost of one TSens pass against re-evaluating the query per
candidate tuple.  The re-evaluation baseline is *sampled* (50 probes per
relation) so the bench completes; the per-probe cost times the true number
of candidates gives the extrapolated full cost recorded in ``extra_info``.
"""

import time

from repro.baselines import reevaluation_sensitivity
from repro.core import local_sensitivity
from repro.workloads import q1_workload


def test_reeval_vs_tsens_speedup(benchmark, tpch_small):
    workload = q1_workload()
    db = workload.prepared(tpch_small)

    tsens_start = time.perf_counter()
    exact = local_sensitivity(workload.query, db)
    tsens_seconds = time.perf_counter() - tsens_start

    probes = 50
    sampled = benchmark.pedantic(
        lambda: reevaluation_sensitivity(
            workload.query, db, max_probes_per_relation=probes
        ),
        rounds=2,
        iterations=1,
    )
    assert sampled.local_sensitivity <= exact.local_sensitivity

    # Extrapolate: total candidates ≈ Σ (deletions + representative-domain
    # insertions) per relation; the sampled run costs `probes` per relation.
    total_candidates = 0
    for relation in workload.query.relation_names:
        total_candidates += db.relation(relation).distinct_count()
        total_candidates += sum(1 for _ in db.representative_tuples(relation))
    per_probe = benchmark.stats.stats.min / (probes * len(workload.query.relation_names))
    extrapolated = per_probe * total_candidates
    benchmark.extra_info["tsens_seconds"] = tsens_seconds
    benchmark.extra_info["reeval_extrapolated_seconds"] = extrapolated
    benchmark.extra_info["speedup"] = extrapolated / max(tsens_seconds, 1e-9)
    # The paper reports ×10k+; at this tiny scale we still demand a big gap.
    assert extrapolated > 10 * tsens_seconds
