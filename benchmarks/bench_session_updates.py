"""Ablation — session maintenance: update streams vs rebuild-per-update.

The claim behind the prepared-query session API: once a
:class:`~repro.session.PreparedQuery` exists, a stream of committed
insert/delete updates — each followed by a count probe — costs only the
touched leaf-to-root path of the cached join-tree counts per update,
while the historical usage pattern (call a one-shot function again after
every change) re-plans, re-binds and re-aggregates the whole database
every time.

The workload is a broom-shaped acyclic query (a star around the hub plus
a two-hop handle) over relations large enough that full re-binding
dominates: updates touch a random relation, so the maintained path is
usually 2–3 nodes of the 6-node tree.  Both sides share one explicit
join tree, so the measured gap *excludes* the rebuild's decomposition
cost — the assertion is conservative.

``extra_info`` records both stream times and the speedup; the bench
asserts the maintained session is ≥ 5× faster and that every maintained
count equals the rebuilt one (the equivalence the hypothesis suite pins
at random-instance scale).
"""

import time

import numpy as np

from repro.datasets import random_update_stream
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.query.jointree import join_tree_from_parents
from repro.session import prepare, rebuild_per_update_counts

UPDATES = 30
#: Per-backend relation sizes: chosen so one full rebuild clearly costs
#: more than one maintained path update, while the whole bench stays
#: CI-friendly.  The columnar engine needs bigger tables for its (much
#: cheaper) rebuild to dominate the per-update fixed overheads.
ROWS = {"python": 3000, "columnar": 30000}
DOMAIN = 400
SEED = 7

QUERY = parse_query(
    "Q(A,B,C,D,E,F,G) :- Hub(A,B), S1(A,C), S2(A,D), S3(A,E), T1(B,F), T2(F,G)"
)
TREE = join_tree_from_parents(
    QUERY,
    "Hub",
    {"S1": "Hub", "S2": "Hub", "S3": "Hub", "T1": "Hub", "T2": "T1"},
)


def _broom_database(backend: str, rng: np.random.Generator) -> Database:
    n_rows = ROWS[backend]

    def table(attrs):
        rows = rng.integers(0, DOMAIN, size=(n_rows, len(attrs)))
        return Relation(attrs, [tuple(int(v) for v in row) for row in rows])

    return Database(
        {
            "Hub": table(["A", "B"]),
            "S1": table(["A", "C"]),
            "S2": table(["A", "D"]),
            "S3": table(["A", "E"]),
            "T1": table(["B", "F"]),
            "T2": table(["F", "G"]),
        },
        backend=backend,
    )


def test_session_stream_vs_rebuild(benchmark, backend):
    rng = np.random.default_rng(SEED)
    db = _broom_database(backend, rng)
    stream = random_update_stream(QUERY, db, rng, UPDATES)

    def maintained_stream():
        session = prepare(QUERY, db, tree=TREE)
        return [session.apply([update]) for update in stream]

    maintained_counts = benchmark.pedantic(
        maintained_stream, rounds=2, iterations=1
    )
    maintained_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    rebuilt_counts = rebuild_per_update_counts(QUERY, db, stream, tree=TREE)
    rebuild_seconds = time.perf_counter() - start

    # Exact equivalence after every single update, not just at the end.
    assert maintained_counts == rebuilt_counts

    speedup = rebuild_seconds / max(maintained_seconds, 1e-9)
    benchmark.extra_info["updates"] = UPDATES
    benchmark.extra_info["maintained_seconds"] = maintained_seconds
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["rebuild_vs_maintained_speedup"] = speedup

    # The acceptance bar of the session API: serving an update stream from
    # maintained state beats rebuild-per-update by at least 5x.
    assert speedup >= 5.0
