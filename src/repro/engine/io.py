"""Loading and saving relations and databases (CSV and JSON).

A downstream user's data lives in files, not Python literals.  This module
round-trips the engine's bag relations through two formats:

* **CSV** — one file per relation; a header row of attribute names, one
  line per tuple *occurrence* (duplicates encode multiplicity).  An
  optional reserved ``__count__`` column stores multiplicities compactly.
* **JSON** — a whole database in one document, including primary/foreign
  key metadata, so PrivSQL policies survive the round trip.

Values are strings after a CSV round trip unless a per-column converter is
supplied; JSON preserves ints/floats/strings natively.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.engine.backend import DEFAULT_BACKEND, get_backend
from repro.engine.database import Database, ForeignKey
from repro.engine.relation import Relation
from repro.exceptions import SchemaError

COUNT_COLUMN = "__count__"

PathLike = Union[str, Path]
Converter = Callable[[str], object]


def read_relation_csv(
    path: PathLike,
    converters: Optional[Mapping[str, Converter]] = None,
    backend: str = DEFAULT_BACKEND,
) -> Relation:
    """Load a bag relation from a CSV file.

    The header names the attributes; a ``__count__`` column, if present,
    holds per-row multiplicities (rows may still repeat — counts add).
    ``converters`` maps attribute name to a value parser (e.g. ``int``).
    ``backend`` selects the physical representation the relation is
    materialised on (``"python"`` or ``"columnar"``).
    """
    path = Path(path)
    # Keep the caller's mapping as-is: the CLI passes lazy mappings whose
    # .get() is overridden (--int-columns), which dict() would discard.
    if converters is None:
        converters = {}
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; expected a header row") from None
        if COUNT_COLUMN in header:
            count_index = header.index(COUNT_COLUMN)
            attributes = [h for h in header if h != COUNT_COLUMN]
        else:
            count_index = None
            attributes = list(header)
        value_indices = [i for i, h in enumerate(header) if h != COUNT_COLUMN]
        parsers = [converters.get(attr) for attr in attributes]

        counts: Dict[tuple, int] = {}
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{line_number}: expected {len(header)} fields, "
                    f"got {len(row)}"
                )
            values = []
            for parser, index in zip(parsers, value_indices):
                raw = row[index]
                values.append(parser(raw) if parser else raw)
            multiplicity = 1
            if count_index is not None:
                try:
                    multiplicity = int(row[count_index])
                except ValueError:
                    raise SchemaError(
                        f"{path}:{line_number}: bad {COUNT_COLUMN} value "
                        f"{row[count_index]!r}"
                    ) from None
                if multiplicity < 0:
                    raise SchemaError(
                        f"{path}:{line_number}: negative multiplicity"
                    )
            key = tuple(values)
            counts[key] = counts.get(key, 0) + multiplicity
        counts = {row: cnt for row, cnt in counts.items() if cnt}
        return get_backend(backend).relation(attributes, counts)


def write_relation_csv(
    relation: Relation, path: PathLike, expand_counts: bool = False
) -> None:
    """Write a bag relation to CSV.

    With ``expand_counts`` each occurrence becomes its own line (plain CSV
    consumers see the bag); otherwise a ``__count__`` column keeps the file
    compact.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if expand_counts:
            writer.writerow(relation.attributes)
            for row, cnt in sorted(relation.items(), key=repr):
                for _ in range(cnt):
                    writer.writerow(row)
        else:
            writer.writerow(list(relation.attributes) + [COUNT_COLUMN])
            for row, cnt in sorted(relation.items(), key=repr):
                writer.writerow(list(row) + [cnt])


def database_to_json(db: Database) -> Dict[str, object]:
    """A JSON-serialisable dict capturing relations and key metadata."""
    relations = {}
    for name in db.relation_names:
        relation = db.relation(name)
        relations[name] = {
            "attributes": list(relation.attributes),
            "rows": [
                [list(row), cnt]
                for row, cnt in sorted(relation.items(), key=repr)
            ],
        }
    primary_keys = {
        name: list(db.primary_key(name) or ())
        for name in db.relation_names
        if db.primary_key(name)
    }
    foreign_keys = [
        {
            "child": fk.child,
            "child_attributes": list(fk.child_attributes),
            "parent": fk.parent,
            "parent_attributes": list(fk.parent_attributes),
        }
        for fk in db.foreign_keys
    ]
    return {
        "relations": relations,
        "primary_keys": primary_keys,
        "foreign_keys": foreign_keys,
    }


def database_from_json(
    document: Mapping[str, object], backend: str = DEFAULT_BACKEND
) -> Database:
    """Inverse of :func:`database_to_json`."""
    chosen = get_backend(backend)
    raw_relations = document.get("relations")
    if not isinstance(raw_relations, Mapping) or not raw_relations:
        raise SchemaError("JSON document has no relations")
    relations = {}
    for name, payload in raw_relations.items():
        attributes = payload["attributes"]
        counts = {tuple(row): int(cnt) for row, cnt in payload["rows"]}
        relations[name] = chosen.relation(attributes, counts)
    primary_keys = {
        name: tuple(attrs)
        for name, attrs in (document.get("primary_keys") or {}).items()
    }
    foreign_keys = [
        ForeignKey(
            child=fk["child"],
            child_attributes=tuple(fk["child_attributes"]),
            parent=fk["parent"],
            parent_attributes=tuple(fk["parent_attributes"]),
        )
        for fk in document.get("foreign_keys") or []
    ]
    return Database(relations, primary_keys=primary_keys, foreign_keys=foreign_keys)


def save_database(db: Database, path: PathLike) -> None:
    """Write a whole database (with key metadata) to one JSON file."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(database_to_json(db), handle, indent=1)


def load_database(path: PathLike, backend: str = DEFAULT_BACKEND) -> Database:
    """Load a database saved by :func:`save_database`."""
    path = Path(path)
    with path.open() as handle:
        return database_from_json(json.load(handle), backend=backend)


def load_database_csv_dir(
    directory: PathLike,
    converters: Optional[Mapping[str, Mapping[str, Converter]]] = None,
    backend: str = DEFAULT_BACKEND,
) -> Database:
    """Load every ``*.csv`` in a directory as one database.

    The file stem becomes the relation name; ``converters`` maps relation
    name to its per-column converter mapping.  Key metadata cannot be
    expressed in CSV — declare it separately or use the JSON format.
    """
    directory = Path(directory)
    if converters is None:
        converters = {}
    relations = {}
    for csv_path in sorted(directory.glob("*.csv")):
        name = csv_path.stem
        relations[name] = read_relation_csv(
            csv_path, converters.get(name), backend=backend
        )
    if not relations:
        raise SchemaError(f"no .csv files found in {directory}")
    return Database(relations)
