"""Known-bad: chain execution materialises worker output mid-chain."""


def import_result(payload, vocab):
    raise NotImplementedError


def decode_relation(payload, vocab):
    raise NotImplementedError


def _combine(parts, regroup):
    raise NotImplementedError


class WorkerState:
    def run_plan(self, plan, inputs):
        emit_parts = {}
        for segment in plan.segments():
            results = self._pool.run(segment)
            for result in results:
                # BAD: importing every shard's intermediate back to the
                # coordinator inside the chain loop — the per-op round
                # trip the resident pipeline exists to remove.
                emit_parts[segment] = import_result(result, self._vocab)
        return emit_parts

    def peek(self, name):
        # BAD: ad-hoc materialisation outside fetch/_reduce_emits.
        parts = [decode_relation(p, self._vocab) for p in self._parts[name]]
        return _combine(parts, regroup=True)

    def fetch(self, name):
        # fetch is sanctioned; this body alone would be fine.
        return _combine(
            [import_result(p, self._vocab) for p in self._parts[name]],
            regroup=True,
        )
