"""A small predicate DSL for selection conditions (Sec. 5.4 "Selections").

Python callables work fine as selection predicates inside programs, but
they cannot be printed, serialised, or passed on a command line.  This
module provides composable predicate objects with a tiny text syntax::

    A = 5            equality          (also != , < , <= , > , >=)
    A in {1, 2, 3}   membership
    cond and cond    conjunction
    cond or cond     disjunction
    not cond         negation

Predicates are callables over ``{attribute: value}`` mappings, so they plug
directly into :meth:`ConjunctiveQuery.with_selection`.  Comparisons coerce
numeric-looking literals to int/float; everything else compares as string.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Mapping, Tuple

from repro.exceptions import ParseError


def _coerce(text: str) -> object:
    """Parse a literal: int, then float, then bare/quoted string."""
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


class Predicate:
    """Base class: a printable, composable selection condition."""

    def __call__(self, row: Mapping[str, object]) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


_OPERATORS = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Predicate):
    """``attribute <op> literal``."""

    attribute: str
    operator: str
    value: object

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise ParseError(f"unknown comparison operator {self.operator!r}")

    def __call__(self, row: Mapping[str, object]) -> bool:
        actual = row[self.attribute]
        expected = self.value
        # Compare numerically when both sides look numeric.
        if isinstance(expected, (int, float)) and not isinstance(actual, (int, float)):
            try:
                actual = type(expected)(actual)  # type: ignore[call-overload]
            except (TypeError, ValueError):
                return False
        try:
            return _OPERATORS[self.operator](actual, expected)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute} {self.operator} {self.value!r}"


@dataclass(frozen=True)
class Member(Predicate):
    """``attribute in {literals}``."""

    attribute: str
    values: FrozenSet[object]

    def __call__(self, row: Mapping[str, object]) -> bool:
        return row[self.attribute] in self.values

    def __str__(self) -> str:
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"{self.attribute} in {{{rendered}}}"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def __call__(self, row: Mapping[str, object]) -> bool:
        return self.left(row) and self.right(row)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def __call__(self, row: Mapping[str, object]) -> bool:
        return self.left(row) or self.right(row)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def __call__(self, row: Mapping[str, object]) -> bool:
        return not self.inner(row)

    def __str__(self) -> str:
        return f"(not {self.inner})"


class TruePredicate(Predicate):
    """Always true — the neutral element for composition."""

    def __call__(self, row: Mapping[str, object]) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


# ------------------------------------------------------------------ parser
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<lbrace>\{)|(?P<rbrace>\})"
    r"|(?P<comma>,)|(?P<op><=|>=|!=|==|=|<|>)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<string>'[^']*'|\"[^\"]*\"))"
)

_KEYWORDS = {"and", "or", "not", "in", "true"}


def _tokenize(text: str):
    position = 0
    tokens = []
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"bad predicate syntax at: {text[position:position + 20]!r}")
        kind = match.lastgroup
        value = match.group(kind)  # type: ignore[arg-type]
        tokens.append((kind, value))
        position = match.end()
    return tokens


class _Parser:
    """Recursive descent over: or > and > not > atom."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else (None, None)

    def take(self):
        token = self.peek()
        self.index += 1
        return token

    def expect(self, kind, value=None):
        actual_kind, actual_value = self.take()
        if actual_kind != kind or (value is not None and actual_value != value):
            raise ParseError(
                f"expected {value or kind}, got {actual_value!r}"
            )
        return actual_value

    def parse(self) -> Predicate:
        predicate = self.parse_or()
        if self.index != len(self.tokens):
            raise ParseError(f"trailing tokens after predicate: {self.peek()[1]!r}")
        return predicate

    def parse_or(self) -> Predicate:
        left = self.parse_and()
        while self.peek() == ("word", "or"):
            self.take()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Predicate:
        left = self.parse_not()
        while self.peek() == ("word", "and"):
            self.take()
            left = And(left, self.parse_not())
        return left

    def parse_not(self) -> Predicate:
        if self.peek() == ("word", "not"):
            self.take()
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Predicate:
        kind, value = self.peek()
        if kind == "lparen":
            self.take()
            inner = self.parse_or()
            self.expect("rparen")
            return inner
        if kind == "word" and value == "true":
            self.take()
            return TruePredicate()
        if kind != "word" or value in _KEYWORDS:
            raise ParseError(f"expected attribute name, got {value!r}")
        attribute = self.take()[1]
        kind, value = self.peek()
        if kind == "word" and value == "in":
            self.take()
            self.expect("lbrace")
            literals = []
            while True:
                lk, lv = self.take()
                if lk not in ("number", "string", "word"):
                    raise ParseError(f"bad literal in set: {lv!r}")
                literals.append(_coerce(lv))
                kind, value = self.take()
                if kind == "rbrace":
                    break
                if kind != "comma":
                    raise ParseError(f"expected ',' or '}}', got {value!r}")
            return Member(attribute, frozenset(literals))
        if kind == "op":
            operator = self.take()[1]
            lk, lv = self.take()
            if lk not in ("number", "string", "word"):
                raise ParseError(f"bad comparison literal: {lv!r}")
            return Compare(attribute, "=" if operator == "==" else operator, _coerce(lv))
        raise ParseError(f"expected comparison or 'in' after {attribute!r}")


def parse_predicate(text: str) -> Predicate:
    """Parse a predicate expression.

    Examples
    --------
    >>> p = parse_predicate("A = 1 and (B > 2 or C in {'x', 'y'})")
    >>> p({"A": 1, "B": 0, "C": "x"})
    True
    >>> p({"A": 2, "B": 9, "C": "x"})
    False
    """
    text = text.strip()
    if not text:
        raise ParseError("empty predicate")
    return _Parser(_tokenize(text)).parse()
