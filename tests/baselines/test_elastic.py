"""Unit tests for the Elastic (Flex) baseline."""

import numpy as np
import pytest

from repro.baselines import (
    elastic_per_relation,
    elastic_sensitivity,
    plan_from_tree,
)
from repro.core import naive_local_sensitivity
from repro.datasets import random_acyclic_query, random_database
from repro.engine import Database, Relation
from repro.query import auto_decompose, gyo_join_tree, parse_query
from repro.exceptions import MechanismConfigError, UnknownRelationError


class TestUpperBound:
    def test_bounds_fig1(self, fig1_query, fig1_db):
        exact = naive_local_sensitivity(fig1_query, fig1_db).local_sensitivity
        assert elastic_sensitivity(fig1_query, fig1_db) >= exact

    def test_bounds_fig3(self, fig3_query, fig3_db):
        exact = naive_local_sensitivity(fig3_query, fig3_db).local_sensitivity
        assert elastic_sensitivity(fig3_query, fig3_db) >= exact

    def test_bounds_random_instances(self):
        rng = np.random.default_rng(13)
        for _ in range(25):
            query = random_acyclic_query(rng, num_atoms=3)
            db = random_database(query, rng)
            exact = naive_local_sensitivity(query, db).local_sensitivity
            assert elastic_sensitivity(query, db) >= exact

    def test_selection_obliviousness(self, fig3_query, fig3_db):
        # Flex ignores selections: the bound must not shrink.
        filtered = fig3_query.with_selection("R2", lambda row: False)
        assert elastic_sensitivity(filtered, fig3_db) == elastic_sensitivity(
            fig3_query, fig3_db
        )


class TestJoinPlans:
    def test_plan_from_tree_covers_all(self, fig1_query):
        plan = plan_from_tree(gyo_join_tree(fig1_query))

        def flatten(p):
            if isinstance(p, str):
                return [p]
            return flatten(p[0]) + flatten(p[1])

        assert sorted(flatten(plan)) == sorted(fig1_query.relation_names)

    def test_explicit_plan(self, fig3_query, fig3_db):
        plan = ((("R1", "R2"), "R3"), "R4")
        assert elastic_sensitivity(fig3_query, fig3_db, plan=plan) > 0

    def test_incomplete_plan_rejected(self, fig3_query, fig3_db):
        with pytest.raises(MechanismConfigError):
            elastic_sensitivity(fig3_query, fig3_db, plan=("R1", "R2"))

    def test_unknown_relation_in_plan(self, fig3_query, fig3_db):
        with pytest.raises(UnknownRelationError):
            elastic_sensitivity(
                fig3_query, fig3_db, plan=((("R1", "R2"), "R3"), "Rz")
            )


class TestCrossProductExtension:
    def test_cross_product_uses_size(self):
        q = parse_query("R(A), S(B)")
        db = Database(
            {
                "R": Relation(["A"], [(1,), (2,), (3,)]),
                "S": Relation(["B"], [(9,)] * 5),
            }
        )
        # Adding one R tuple adds |S| = 5 rows; elastic's bound must cover
        # it via mf(∅, S) = 5.
        bound = elastic_sensitivity(q, db, plan=("R", "S"))
        exact = naive_local_sensitivity(q, db).local_sensitivity
        assert bound >= exact == 5


class TestPerRelation:
    def test_per_relation_max_is_overall(self, fig1_query, fig1_db):
        per = elastic_per_relation(fig1_query, fig1_db)
        assert max(per.values()) == elastic_sensitivity(fig1_query, fig1_db)

    def test_protected_selects_one(self, fig1_query, fig1_db):
        per = elastic_per_relation(fig1_query, fig1_db)
        for relation, value in per.items():
            assert (
                elastic_sensitivity(fig1_query, fig1_db, protected=relation)
                == value
            )

    def test_per_relation_bounds_naive(self, fig1_query, fig1_db):
        per = elastic_per_relation(fig1_query, fig1_db)
        naive = naive_local_sensitivity(fig1_query, fig1_db)
        for relation in fig1_query.relation_names:
            assert per[relation] >= naive.per_relation[relation].sensitivity

    def test_protected_unknown_relation(self, fig1_query, fig1_db):
        with pytest.raises(UnknownRelationError):
            elastic_sensitivity(fig1_query, fig1_db, protected="Rz")


class TestCyclic:
    def test_triangle_bound(self, triangle_query, triangle_db):
        exact = naive_local_sensitivity(
            triangle_query, triangle_db
        ).local_sensitivity
        bound = elastic_sensitivity(
            triangle_query, triangle_db, tree=auto_decompose(triangle_query)
        )
        assert bound >= exact
