"""Unit tests for the TPC-H generator."""

import pytest

from repro.datasets import generate_tpch, table_sizes
from repro.datasets.tpch import SUPPLIERS_PER_PART
from repro.exceptions import MechanismConfigError


@pytest.fixture(scope="module")
def db():
    return generate_tpch(0.001, seed=3)


class TestCardinalities:
    def test_scale_free_tables(self, db):
        assert db.relation("Region").total_count() == 5
        assert db.relation("Nation").total_count() == 25

    def test_scaled_tables(self, db):
        sizes = table_sizes(db)
        assert sizes["Supplier"] == 10
        assert sizes["Customer"] == 150
        assert sizes["Part"] == 200
        assert sizes["Orders"] == 1500
        assert sizes["Partsupp"] == 200 * SUPPLIERS_PER_PART

    def test_lineitem_between_1_and_7_per_order(self, db):
        lines = db.relation("Lineitem").total_count()
        orders = db.relation("Orders").total_count()
        assert orders <= lines <= 7 * orders

    def test_minimum_one_row_at_tiny_scale(self):
        tiny = generate_tpch(1e-9, seed=0)
        assert all(size >= 1 for size in table_sizes(tiny).values())

    def test_invalid_scale(self):
        with pytest.raises(MechanismConfigError):
            generate_tpch(0.0)


class TestReferentialIntegrity:
    def test_nation_region_fk(self, db):
        regions = db.relation("Region").column_values("RK")
        assert db.relation("Nation").column_values("RK") <= regions

    def test_orders_customer_fk(self, db):
        customers = db.relation("Customer").column_values("CK")
        assert db.relation("Orders").column_values("CK") <= customers

    def test_lineitem_references_orders(self, db):
        orders = db.relation("Orders").column_values("OK")
        assert db.relation("Lineitem").column_values("OK") <= orders

    def test_lineitem_references_partsupp_pairs(self, db):
        partsupp = {row for row in db.relation("Partsupp")}
        for ok, sk, pk in db.relation("Lineitem"):
            assert (sk, pk) in partsupp

    def test_partsupp_has_distinct_suppliers_per_part(self, db):
        by_part = {}
        for sk, pk in db.relation("Partsupp"):
            by_part.setdefault(pk, []).append(sk)
        for suppliers in by_part.values():
            assert len(suppliers) == len(set(suppliers)) == SUPPLIERS_PER_PART

    def test_keys_declared(self, db):
        assert db.primary_key("Customer") == ("CK",)
        children = {fk.child for fk in db.foreign_keys}
        assert {"Nation", "Customer", "Orders", "Lineitem", "Partsupp"} <= children


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_tpch(0.0005, seed=7)
        b = generate_tpch(0.0005, seed=7)
        for name in a.relation_names:
            assert a.relation(name) == b.relation(name)

    def test_different_seed_different_data(self):
        a = generate_tpch(0.0005, seed=7)
        b = generate_tpch(0.0005, seed=8)
        assert any(
            a.relation(n) != b.relation(n)
            for n in ("Customer", "Orders", "Lineitem")
        )
