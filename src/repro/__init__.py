"""repro — Local sensitivities of counting queries with joins.

A from-scratch reproduction of "Computing Local Sensitivities of Counting
Queries with Joins" (Tao, He, Machanavajjhala, Roy — SIGMOD 2020):

* a bag-semantics relational engine (:mod:`repro.engine`),
* conjunctive-query decompositions (:mod:`repro.query`),
* the TSens / LSPathJoin sensitivity algorithms (:mod:`repro.core`),
* the Elastic (Flex) baseline (:mod:`repro.baselines`),
* truncation-based DP mechanisms TSensDP and PrivSQL (:mod:`repro.dp`),
* the paper's datasets and workloads (:mod:`repro.datasets`,
  :mod:`repro.workloads`) and experiment harness (:mod:`repro.experiments`).

Quickstart::

    from repro.query import parse_query
    from repro.engine import Database, Relation
    from repro.core import local_sensitivity

    q = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    db = Database({"R": Relation(["A", "B"], [(1, 2)]),
                   "S": Relation(["B", "C"], [(2, 3), (2, 4)])})
    print(local_sensitivity(q, db).local_sensitivity)  # 2
"""

from repro.core import (
    SensitiveTuple,
    SensitivityResult,
    local_sensitivity,
    most_sensitive_tuples,
)
from repro.engine import Database, Relation, Schema
from repro.query import ConjunctiveQuery, parse_query

__version__ = "1.0.0"

__all__ = [
    "ConjunctiveQuery",
    "Database",
    "Relation",
    "Schema",
    "SensitiveTuple",
    "SensitivityResult",
    "local_sensitivity",
    "most_sensitive_tuples",
    "parse_query",
    "__version__",
]
