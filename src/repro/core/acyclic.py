"""TSens — Algorithm 2, local sensitivity of acyclic (and decomposed) CQs.

Given a join tree (or generalized hypertree decomposition) ``T`` for a
connected full CQ without self-joins, TSens makes two passes over ``T``:

1. **Botjoins** ``K(v)`` in post-order (Eqn. 5/7) — multiplicities of the
   partial joins of the subtree rooted at ``v``, grouped on the attributes
   shared with the parent.
2. **Topjoins** ``J(v)`` in pre-order (Eqn. 4/8) — multiplicities of the
   partial joins of the *complement* of ``v``'s subtree, again grouped on
   the shared attributes.

The **multiplicity table** ``T^i`` of a relation ``R_i`` assigned to node
``v`` joins the topjoin of ``v``, the botjoins of ``v``'s children, and the
*other* relations materialised inside ``v`` (Sec. 5.4 "General joins"),
grouped on ``R_i``'s effective attributes.  ``T^i[t]`` is simultaneously the
upward and the downward tuple sensitivity of ``t`` because the join excludes
``R_i`` itself — adding or removing ``t`` adds or removes exactly ``T^i[t]``
output tuples.

The local sensitivity is the max entry over all multiplicity tables
(Theorem 5.1); the argmax row, extended with extrapolated values for
exclusive attributes, is the most sensitive tuple.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.operators import group_by, join, join_all
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.evaluation.yannakakis import BoundTree, bind, compute_botjoins
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.gyo import gyo_join_tree
from repro.query.jointree import DecompositionTree
from repro.core.result import MultiplicityTable, SensitiveTuple, SensitivityResult
from repro.exceptions import QueryStructureError


def compute_topjoins(
    bound: BoundTree, botjoins: Dict[str, Relation]
) -> Dict[str, Optional[Relation]]:
    """Topjoins ``J(v)`` for every node, in pre-order (paper Eqn. 8).

    ``J(root)`` is ``None`` (the complement of the whole tree is empty).
    For a node whose parent is the root the topjoin omits ``J(parent)``;
    otherwise ``J(v) = γ_{A_v ∩ A_p} r̃join(rel_p, J(p), {K(s) | s ∈ N(v)})``.
    """
    tree = bound.tree
    topjoins: Dict[str, Optional[Relation]] = {tree.root: None}
    for node_id in tree.pre_order():
        if node_id == tree.root:
            continue
        parent = tree.parent(node_id)
        assert parent is not None
        parts: List[Relation] = [bound.relation(parent)]
        parent_top = topjoins[parent]
        if parent_top is not None:
            parts.append(parent_top)
        for sibling in tree.neighbours(node_id):
            parts.append(botjoins[sibling])
        joined = join_all(parts)
        group_attrs = sorted(tree.shared_with_parent(node_id))
        topjoins[node_id] = group_by(joined, group_attrs)
    return topjoins


def _effective_attributes(query: ConjunctiveQuery, relation: str) -> Tuple[str, ...]:
    """Attributes of ``relation`` shared with at least one other atom."""
    atom = query.atom(relation)
    exclusive = set(query.exclusive_variables(relation))
    return tuple(v for v in atom.variables if v not in exclusive)


def _connected_components(parts: List[Relation]) -> List[List[Relation]]:
    """Group relations into components connected by shared attributes."""
    remaining = list(parts)
    components: List[List[Relation]] = []
    while remaining:
        seed = remaining.pop(0)
        group = [seed]
        attrs = set(seed.attributes)
        changed = True
        while changed:
            changed = False
            for other in list(remaining):
                if attrs & set(other.attributes):
                    group.append(other)
                    attrs |= set(other.attributes)
                    remaining.remove(other)
                    changed = True
        components.append(group)
    return components


def multiplicity_table(
    bound: BoundTree,
    botjoins: Dict[str, Relation],
    topjoins: Dict[str, Optional[Relation]],
    relation: str,
) -> MultiplicityTable:
    """The paper's ``T^i`` (Eqn. 6) for one base relation.

    Joins everything *except* ``relation``: the node's topjoin, the node's
    children botjoins, and the other relations assigned to the same node,
    then groups by the relation's effective attributes.

    The paper notes (Sec. 5.2) that these partial joins "may not share any
    attributes in general" — materialising their cross product is exactly
    the ``n^d`` blow-up of Theorem 5.1.  We avoid it losslessly: the parts
    split into attribute-connected components, ``γ`` distributes over the
    cross product of components, and the result is stored as a *factored*
    :class:`~repro.core.result.MultiplicityTable` (the same representation
    Algorithm 1 uses for path queries), so doubly acyclic queries never pay
    the cross product.
    """
    tree = bound.tree
    query = bound.query
    node_id = tree.node_of_relation(relation)
    parts: List[Relation] = []
    top = topjoins[node_id]
    if top is not None:
        parts.append(top)
    for child in tree.children(node_id):
        parts.append(botjoins[child])
    for other in tree.node(node_id).relations:
        if other != relation:
            parts.append(bound.atom_relation(other))
    effective = _effective_attributes(query, relation)
    if not parts:
        # Single-relation query: Q(D) = R, every tuple has sensitivity 1.
        table = Relation(Schema(effective), {(): 1} if not effective else {})
        return MultiplicityTable(relation, (table,))

    factors: List[Relation] = []
    covered: List[str] = []
    for component in _connected_components(parts):
        joined = join_all(component)
        component_effective = tuple(a for a in effective if a in joined.schema)
        factors.append(group_by(joined, component_effective))
        covered.extend(component_effective)
    missing = [a for a in effective if a not in covered]
    if missing:
        raise QueryStructureError(
            f"multiplicity table for {relation!r} is missing attributes "
            f"{missing}; the decomposition does not cover the query"
        )
    return MultiplicityTable(relation, tuple(factors))


def best_witness(
    table: MultiplicityTable,
    query: ConjunctiveQuery,
    db: Database,
    relation: str,
) -> SensitiveTuple:
    """The most sensitive tuple of ``relation`` honouring its selection.

    Without a selection predicate this is the table argmax.  With one,
    entries stream out in descending sensitivity until the first whose
    extrapolated full assignment satisfies the predicate — matching the
    paper's rule that tuples failing the selection have sensitivity 0.
    (Exclusive attributes take their fixed representative value, exactly
    as the brute-force Theorem 3.1 enumeration does.)
    """
    predicate = query.selections.get(relation)
    if predicate is None:
        partial, sensitivity = table.argmax()
        if partial is None:
            return SensitiveTuple(relation, {}, 0)
        assignment = extrapolate_assignment(query, db, relation, partial)
        return SensitiveTuple(relation, assignment, sensitivity)
    for partial, sensitivity in table.iter_descending():
        if sensitivity == 0:
            break
        assignment = extrapolate_assignment(query, db, relation, dict(partial))
        if predicate(assignment):
            return SensitiveTuple(relation, assignment, sensitivity)
    return SensitiveTuple(relation, {}, 0)


def extrapolate_assignment(
    query: ConjunctiveQuery,
    db: Database,
    relation: str,
    partial: Dict[str, object],
) -> Dict[str, object]:
    """Fill values for exclusive attributes of ``relation`` (Sec. 5.4).

    Exclusive attributes do not affect the sensitivity, so any value works;
    we take the relation's representative-domain pick for determinism.
    """
    assignment = dict(partial)
    atom = query.atom(relation)
    base_attrs = db.relation(relation).schema.attributes
    var_to_column = dict(zip(atom.variables, base_attrs))
    for var in query.exclusive_variables(relation):
        if var not in assignment:
            column = var_to_column[var]
            domain = db.representative_domain(column, relation)
            assignment[var] = min(domain, key=repr)
    return assignment


def tsens_connected(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Iterable[str] = (),
) -> SensitivityResult:
    """TSens over a connected query.

    Parameters
    ----------
    query:
        Connected full CQ without self-joins.
    db:
        Database instance.
    tree:
        Join tree / GHD covering the query.  Defaults to the GYO join tree
        (the query must then be acyclic).
    skip_relations:
        Relations whose multiplicity table is not computed; the paper skips
        relations whose attributes form a superkey of the join output
        (tuple sensitivity ≤ 1, e.g. LINEITEM in q3) to avoid a huge table.
        Skipped relations get sensitivity bound 1 with no witness table.
    """
    if not query.is_connected():
        raise QueryStructureError(
            "tsens_connected needs a connected query; use local_sensitivity()"
        )
    if tree is None:
        tree = gyo_join_tree(query)
    if not tree.covers_query(query):
        raise QueryStructureError(
            f"decomposition does not cover query {query.name}"
        )
    skip = set(skip_relations)
    bound = bind(query, tree, db)
    botjoins = compute_botjoins(bound)
    topjoins = compute_topjoins(bound, botjoins)

    tables: Dict[str, MultiplicityTable] = {}
    per_relation: Dict[str, SensitiveTuple] = {}
    for relation in query.relation_names:
        if relation in skip:
            # The caller certifies δ ≤ 1 for this relation (e.g. its
            # attributes form a superkey of the join output, as for
            # LINEITEM in the paper's q3); record the bound, no table.
            per_relation[relation] = SensitiveTuple(relation, {}, 1)
            continue
        table = multiplicity_table(bound, botjoins, topjoins, relation)
        tables[relation] = table
        per_relation[relation] = best_witness(table, query, db, relation)

    local = max((w.sensitivity for w in per_relation.values()), default=0)
    witness: Optional[SensitiveTuple] = None
    if local > 0:
        candidates = [w for w in per_relation.values() if w.sensitivity == local]
        with_assignment = [w for w in candidates if w.assignment]
        witness = (with_assignment or candidates)[0]
    return SensitivityResult(
        query_name=query.name,
        method="tsens",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables=tables,
    )
