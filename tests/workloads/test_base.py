"""Unit tests for the Workload container."""

from repro.engine import Database, Relation
from repro.query import parse_query
from repro.workloads.base import Workload


class TestWorkload:
    def test_prepared_applies_transform(self):
        base = Database({"R": Relation(["A"], [(1,), (2,)])})

        def halve(db):
            rel = db.relation("R")
            kept = {row: cnt for row, cnt in rel.items() if row[0] == 1}
            return db.with_relation("R", Relation(rel.schema, kept))

        workload = Workload(
            name="w",
            query=parse_query("R(A)"),
            prepare=halve,
        )
        assert workload.prepared(base).relation("R").total_count() == 1

    def test_defaults(self):
        workload = Workload(
            name="w", query=parse_query("R(A)"), prepare=lambda db: db
        )
        assert workload.tree is None
        assert workload.primary is None
        assert workload.ell == 100
        assert workload.skip_relations == ()
