"""Experiment harness: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments import fig6a, fig6b, fig7, param_analysis, table1, table2
from repro.experiments.reporting import format_table, median, ratio
from repro.experiments.runner import (
    WorkloadMeasurement,
    facebook_database,
    measure_workload,
    timed,
    tpch_database,
)

__all__ = [
    "WorkloadMeasurement",
    "facebook_database",
    "fig6a",
    "fig6b",
    "fig7",
    "format_table",
    "measure_workload",
    "median",
    "param_analysis",
    "ratio",
    "table1",
    "table2",
    "timed",
    "tpch_database",
]
