"""Hash-partitioned shards of relations, shared-memory backed.

The sharded execution layer splits a relation into ``N`` disjoint shards by
hashing one *partition attribute*, so each worker process can run the
existing vectorized kernels (:mod:`repro.engine.columnar`) on its shard and
the coordinator only reduces small partials:

* **Columnar relations** partition on the dictionary *code* of the chosen
  attribute (``code % N``).  Codes come from the process-wide vocabulary,
  so two relations sharded on a shared join attribute are *co-partitioned*:
  every joinable pair of rows lands in the same shard, shard-local joins
  are complete, and their union is exactly the serial join (rows from
  different shards differ on the partition attribute, so no cross-shard
  deduplication is ever needed).
* **Python-backend relations** partition on ``hash(value) % N``, computed
  entirely on the coordinator (worker processes never re-hash, so per-
  process string-hash randomization cannot skew placement).

Columnar relations are exported to workers through
``multiprocessing.shared_memory``: one block per *relation* laid out as an
``(arity + 1, rows)`` ``int64`` matrix (multiplicities first, then one row
per code column).  Each worker attaches the block, wraps zero-copy numpy
views in a :class:`~repro.engine.columnar.ColumnarRelation`, and gathers
its own shard (``code % N == shard_id``) locally — the coordinator pays
one sequential memcpy per relation while the N per-shard gathers run in
parallel, and the same export serves partitionings on every attribute.
Large kernel *results* travel the same road in reverse: the worker writes
them into a segment it disowns and the coordinator copies out and unlinks
(:func:`encode_result` / :func:`import_result`).

:class:`ShardMap` caches :class:`ShardedRelation` per logical name (e.g.
``"bot:<node>"``) keyed by *source-relation identity*: the maintained join
state replaces relation objects wholesale on commit, so a stale cache entry
is detected by a pointer comparison and rebuilt on next use — no explicit
invalidation protocol, and at most one live partitioning per key.
"""

from __future__ import annotations

import contextlib
import hashlib
import weakref
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.columnar import ColumnarRelation, _Vocabulary
from repro.engine.operators import difference, union_all
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.exceptions import InternalError

#: Worker payload describing one relation: ``("shm", name, attrs, rows,
#: generation)`` for a shared-memory columnar relation, ``("shard", base,
#: position, shard_id, n_shards)`` for one hash shard (``position=None``
#: for a row block) the worker gathers out of ``base`` itself, ``("col",
#: attrs, codes, mult, generation)`` for an inline columnar relation, or
#: ``("py", attrs, counts)`` for a python-backend relation.
Payload = Tuple


def _release_block(shm: shared_memory.SharedMemory) -> None:
    with contextlib.suppress(OSError, BufferError):
        shm.close()
        shm.unlink()


class SharedBlock:
    """Owner handle of one shared-memory segment (coordinator side).

    Unlinks exactly once — explicitly via :meth:`close` or, as a safety
    net, when the handle is garbage collected.
    """

    def __init__(self, shm: shared_memory.SharedMemory):
        self._shm = shm
        self.name = shm.name
        self._finalizer = weakref.finalize(self, _release_block, shm)

    def close(self) -> None:
        self._finalizer()

    def disown(self) -> None:
        """Close the local mapping *without* unlinking the segment.

        Used on both sides of the transfer paths: the producer writes its
        data, disowns the block, and ships the segment name — whoever
        imports the payload (:func:`import_result` /
        :func:`gather_exchange`) unlinks it.  Ownership leaves this
        process entirely, so the local resource tracker must forget the
        segment too: the eventual unlink may run in a process whose
        tracker registrations are silenced (workers), and a stale entry
        makes the tracker warn about — and try to unlink — a segment
        that is already gone.
        """
        self._finalizer.detach()
        from multiprocessing import resource_tracker

        with contextlib.suppress(Exception):
            resource_tracker.unregister(self._shm._name, "shared_memory")
        with contextlib.suppress(OSError, BufferError):
            self._shm.close()


def export_columnar(relation: ColumnarRelation) -> Tuple[Payload, Optional[SharedBlock]]:
    """Copy a columnar relation into a shared-memory block.

    Returns the worker payload plus the owning :class:`SharedBlock` (or
    ``None`` when the relation is empty — zero-byte segments are illegal,
    and an inline payload of empty arrays is free anyway).
    """
    codes = relation._codes
    mult = relation._mult
    attrs = relation.schema.attributes
    rows = int(mult.size)
    generation = relation._vocab.generation
    if rows == 0:
        return ("col", attrs, tuple(c[:0] for c in codes), mult[:0], generation), None
    arity = len(codes)
    shm = shared_memory.SharedMemory(create=True, size=8 * rows * (arity + 1))
    matrix = np.ndarray((arity + 1, rows), dtype=np.int64, buffer=shm.buf)
    matrix[0, :] = mult
    for j, column in enumerate(codes):
        matrix[j + 1, :] = column
    del matrix
    return ("shm", shm.name, attrs, rows, generation), SharedBlock(shm)


#: Results at or above this many distinct rows travel back from workers
#: through shared memory instead of the pipe: pickling numpy arrays through
#: a 64 KiB-chunked pipe moves roughly an order of magnitude slower than
#: one shared-memory memcpy.
RESULT_SHM_MIN_ROWS = 65536


def encode_result(relation) -> Payload:
    """Worker-side result encoding: shared memory for large columnar
    results, inline otherwise.

    Ownership of the segment transfers with the payload — the worker
    closes its mapping immediately and the coordinator unlinks after
    :func:`import_result` copies the matrix out.
    """
    if (
        isinstance(relation, ColumnarRelation)
        and relation._mult.size >= RESULT_SHM_MIN_ROWS
    ):
        payload, block = export_columnar(relation)
        if block is not None:
            block.disown()
        return payload
    return encode_relation(relation)


def release_result(payload) -> None:
    """Unlink a shared-memory result payload without importing it.

    Error path only: when one shard's task fails, results already received
    from the other shards must still release their transfer segments.
    """
    if isinstance(payload, tuple) and payload and payload[0] == "shm":
        with contextlib.suppress(OSError, ValueError):
            _release_block(shared_memory.SharedMemory(name=payload[1]))


def import_result(payload: Payload, vocab: _Vocabulary):
    """Coordinator-side: materialize one worker result.

    Shared-memory results are copied out in a single memcpy and the
    worker-created segment is unlinked right here — the transfer segment
    never outlives this call.
    """
    if payload[0] == "shm":
        _, name, attrs, rows, generation = payload
        shm = shared_memory.SharedMemory(name=name)
        matrix = np.array(
            np.ndarray((len(attrs) + 1, rows), dtype=np.int64, buffer=shm.buf)
        )
        _release_block(shm)
        return ColumnarRelation._from_parts(
            Schema(attrs),
            [matrix[j + 1] for j in range(len(attrs))],
            matrix[0],
            vocab=vocab,
        )
    relation, _ = decode_relation(payload, lambda generation: vocab)
    return relation


def encode_relation(relation) -> Payload:
    """Inline worker payload for a relation (no shared memory)."""
    if isinstance(relation, ColumnarRelation):
        return (
            "col",
            relation.schema.attributes,
            relation._codes,
            relation._mult,
            relation._vocab.generation,
        )
    return ("py", relation.schema.attributes, dict(relation.counts))


def decode_relation(
    payload: Payload,
    vocab_for: Callable[[int], _Vocabulary],
) -> Tuple[object, Optional[shared_memory.SharedMemory]]:
    """Rebuild a relation from a worker payload.

    ``vocab_for`` maps a vocabulary generation to the local vocabulary
    object codes decode under (the coordinator's pinned vocabulary, or a
    worker's read-only replica).  For ``"shm"`` payloads the attached
    segment is returned alongside the relation; the caller must drop all
    views before closing it.
    """
    kind = payload[0]
    if kind == "shard":
        _, base, position, shard_id, n_shards = payload
        relation, segment = decode_relation(base, vocab_for)
        if position is None:
            # Row-block shard: a zero-copy slice of the shared matrix.
            rows = relation._mult.size
            bounds = np.linspace(0, rows, n_shards + 1).astype(np.int64)
            lo, hi = int(bounds[shard_id]), int(bounds[shard_id + 1])
            shard = ColumnarRelation._from_parts(
                relation.schema,
                [column[lo:hi] for column in relation._codes],
                relation._mult[lo:hi],
                vocab=relation._vocab,
            )
        else:
            # Hash shard: this worker gathers its own rows — the gather
            # runs once per shard, in parallel, instead of N times on
            # the coordinator.  flatnonzero + take beats a boolean
            # gather ~3x at these sizes.
            indices = np.flatnonzero(
                relation._codes[position] % n_shards == shard_id
            )
            shard = ColumnarRelation._from_parts(
                relation.schema,
                [np.take(column, indices) for column in relation._codes],
                np.take(relation._mult, indices),
                vocab=relation._vocab,
            )
        return shard, segment
    if kind == "shm":
        _, name, attrs, rows, generation = payload
        shm = shared_memory.SharedMemory(name=name)
        matrix = np.ndarray((len(attrs) + 1, rows), dtype=np.int64, buffer=shm.buf)
        relation = ColumnarRelation._from_parts(
            Schema(attrs),
            [matrix[j + 1] for j in range(len(attrs))],
            matrix[0],
            vocab=vocab_for(generation),
        )
        return relation, shm
    if kind == "col":
        _, attrs, codes, mult, generation = payload
        relation = ColumnarRelation._from_parts(
            Schema(attrs), codes, mult, vocab=vocab_for(generation)
        )
        return relation, None
    if kind == "py":
        _, attrs, counts = payload
        return Relation._from_counts(Schema(attrs), counts), None
    raise InternalError(f"unknown shard payload kind {kind!r}")


# ------------------------------------------------------------ partitioning
def partition_by_attribute(relation, attribute: str, n_shards: int) -> List:
    """Split a relation into ``n_shards`` disjoint shards on ``attribute``.

    Columnar relations shard on ``code % n_shards`` (codes are vocabulary-
    global, so relations sharded on a common attribute co-partition);
    python-backend relations shard on ``hash(value) % n_shards``.  The
    concatenation of the shards is exactly the input bag.
    """
    if isinstance(relation, ColumnarRelation):
        position = relation.schema.index_of(attribute)
        shard_ids = relation._codes[position] % n_shards
        shards = []
        for i in range(n_shards):
            mask = shard_ids == i
            shards.append(
                ColumnarRelation._from_parts(
                    relation.schema,
                    [column[mask] for column in relation._codes],
                    relation._mult[mask],
                    vocab=relation._vocab,
                )
            )
        return shards
    position = relation.schema.index_of(attribute)
    buckets: List[Dict] = [{} for _ in range(n_shards)]
    for row, count in relation.items():
        buckets[hash(row[position]) % n_shards][row] = count
    return [Relation._from_counts(relation.schema, bucket) for bucket in buckets]


def partition_by_blocks(relation, n_shards: int) -> List:
    """Split a relation into ``n_shards`` row blocks (no hash attribute).

    Used for selections and cross products, where any disjoint cover of
    the distinct rows is exact.
    """
    if isinstance(relation, ColumnarRelation):
        bounds = np.linspace(0, relation._mult.size, n_shards + 1).astype(np.int64)
        return [
            ColumnarRelation._from_parts(
                relation.schema,
                [column[bounds[i]:bounds[i + 1]] for column in relation._codes],
                relation._mult[bounds[i]:bounds[i + 1]],
                vocab=relation._vocab,
            )
            for i in range(n_shards)
        ]
    rows = list(relation.items())
    block = -(-len(rows) // n_shards) if rows else 1
    return [
        Relation._from_counts(
            relation.schema, dict(rows[i * block:(i + 1) * block])
        )
        for i in range(n_shards)
    ]


# ------------------------------------------------------- chain partitioning
_HASH_MASK = 0x7FFF_FFFF_FFFF_FFFF


def stable_hash(value: object) -> int:
    """Deterministic cross-process hash for chain exchanges.

    The builtin ``hash()`` is per-process randomized for strings, and the
    worker-resident pipeline re-hashes rows *inside the workers* during
    peer-to-peer exchanges — two workers must agree on every row's
    destination shard, so placement cannot depend on ``PYTHONHASHSEED``.
    Columnar relations never need this (dictionary codes are process-
    independent); it exists for the python backend's value rows.
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return value & _HASH_MASK
    if isinstance(value, str):
        data = value.encode("utf-8")
    elif isinstance(value, bytes):
        data = value
    else:
        data = repr(value).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def chain_partition(relation, attribute: str, n_shards: int) -> List:
    """Partition with the *chain* hash (the one workers can reproduce).

    Columnar relations use ``code % n_shards`` exactly like
    :func:`partition_by_attribute`; python-backend relations use
    :func:`stable_hash` instead of the randomized builtin, so coordinator-
    side partitionings (chain loads, resident delta folds) land rows on
    the same shards as worker-side scatters.
    """
    if isinstance(relation, ColumnarRelation):
        return partition_by_attribute(relation, attribute, n_shards)
    position = relation.schema.index_of(attribute)
    buckets: List[Dict] = [{} for _ in range(n_shards)]
    for row, count in relation.items():
        buckets[stable_hash(row[position]) % n_shards][row] = count
    return [Relation._from_counts(relation.schema, bucket) for bucket in buckets]


#: Exchange descriptor, produced worker-side by :func:`export_exchange`:
#: ``("xseg", name, attrs, offsets, generation)`` — one shared-memory
#: segment holding all ``n_shards`` destination buckets of a columnar
#: relation back to back (bucket *i* is rows ``offsets[i]:offsets[i+1]``
#: of the ``(arity + 1, rows)`` matrix); ``("xcol0", attrs, generation)``
#: — an empty columnar relation (zero-byte segments are illegal);
#: ``("xpy", attrs, buckets)`` — inline python-backend buckets.
ExchangeDescriptor = Tuple


def export_exchange(relation, attribute: str, n_shards: int) -> ExchangeDescriptor:
    """Worker-side scatter: bucket ``relation`` by destination shard.

    Columnar rows are sorted by destination and written into **one**
    shared-memory segment with a bucket-offset table, so the N receiving
    peers each attach once and copy out exactly their slice — the rows
    never round-trip through the coordinator, which forwards only this
    descriptor.  The segment is disowned by the producer; the coordinator
    unlinks it after the consuming segment completes
    (:func:`release_exchange`).
    """
    if isinstance(relation, ColumnarRelation):
        attrs = relation.schema.attributes
        generation = relation._vocab.generation
        rows = int(relation._mult.size)
        if rows == 0:
            return ("xcol0", attrs, generation)
        position = relation.schema.index_of(attribute)
        destinations = relation._codes[position] % n_shards
        order = np.argsort(destinations, kind="stable")
        counts = np.bincount(destinations, minlength=n_shards)
        offsets = np.zeros(n_shards + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        arity = len(relation._codes)
        shm = shared_memory.SharedMemory(create=True, size=8 * rows * (arity + 1))
        matrix = np.ndarray((arity + 1, rows), dtype=np.int64, buffer=shm.buf)
        matrix[0, :] = np.take(relation._mult, order)
        for j, column in enumerate(relation._codes):
            matrix[j + 1, :] = np.take(column, order)
        del matrix
        block = SharedBlock(shm)
        block.disown()
        return ("xseg", block.name, attrs, tuple(int(o) for o in offsets), generation)
    position = relation.schema.index_of(attribute)
    buckets: List[Dict] = [{} for _ in range(n_shards)]
    for row, count in relation.items():
        buckets[stable_hash(row[position]) % n_shards][row] = count
    return ("xpy", relation.schema.attributes, buckets)


def gather_exchange(
    descriptors,
    shard_id: int,
    vocab_for: Callable[[int], _Vocabulary],
):
    """Worker-side collect: this shard's bucket from every peer's scatter.

    ``descriptors`` is ordered by source shard (one entry per peer,
    including the gathering worker's own — reading its own slice back
    through the segment keeps the protocol uniform).  Slices are copied
    out and the mappings closed immediately; unlinking is the
    coordinator's job (:func:`release_exchange`), because a peer may not
    have attached yet when this worker finishes.
    """
    attrs: Optional[Tuple[str, ...]] = None
    generation: Optional[int] = None
    code_parts: List[List[np.ndarray]] = []
    mult_parts: List[np.ndarray] = []
    py_counts: Optional[Dict] = None
    for descriptor in descriptors:
        kind = descriptor[0]
        if kind == "xseg":
            _, name, attrs, offsets, generation = descriptor
            arity = len(attrs)
            rows = offsets[-1]
            shm = shared_memory.SharedMemory(name=name)
            matrix = np.ndarray((arity + 1, rows), dtype=np.int64, buffer=shm.buf)
            lo, hi = offsets[shard_id], offsets[shard_id + 1]
            mult_parts.append(np.array(matrix[0, lo:hi]))
            code_parts.append(
                [np.array(matrix[j + 1, lo:hi]) for j in range(arity)]
            )
            del matrix
            with contextlib.suppress(OSError, BufferError):
                shm.close()
        elif kind == "xcol0":
            _, attrs, generation = descriptor
        elif kind == "xpy":
            _, attrs, buckets = descriptor
            if py_counts is None:
                py_counts = {}
            for row, count in buckets[shard_id].items():
                py_counts[row] = py_counts.get(row, 0) + count
        else:
            raise InternalError(f"unknown exchange descriptor kind {kind!r}")
    if attrs is None:
        raise InternalError("exchange collect received no descriptors")
    if py_counts is not None:
        return Relation._from_counts(Schema(attrs), py_counts)
    arity = len(attrs)
    if not mult_parts:
        return ColumnarRelation._from_parts(
            Schema(attrs),
            [np.empty(0, dtype=np.int64) for _ in range(arity)],
            np.empty(0, dtype=np.int64),
            vocab=vocab_for(generation),
        )
    codes = [
        np.concatenate([part[j] for part in code_parts]) for j in range(arity)
    ]
    return ColumnarRelation._from_parts(
        Schema(attrs), codes, np.concatenate(mult_parts), vocab=vocab_for(generation)
    )


def release_exchange(descriptor) -> None:
    """Coordinator-side: unlink one exchange segment (idempotent).

    Called after the consuming pipeline segment completes — success or
    failure — so exchange segments never outlive the barrier they carry
    rows across.
    """
    if (
        isinstance(descriptor, tuple)
        and descriptor
        and descriptor[0] == "xseg"
    ):
        with contextlib.suppress(OSError, ValueError):
            _release_block(shared_memory.SharedMemory(name=descriptor[1]))


# ---------------------------------------------------------- sharded handles
class ShardedRelation:
    """One relation hash-partitioned into worker-ready shard payloads.

    Holds the source relation (for identity-based cache validation), the
    per-shard payloads, and — for shared-memory shards — the owning
    blocks.  ``attribute`` is ``None`` for row-block partitionings.
    """

    def __init__(
        self,
        source,
        attribute: Optional[str],
        n_shards: int,
        share: bool,
        base: Optional[Payload] = None,
    ):
        self.source = source
        self.attribute = attribute
        self.n_shards = n_shards
        self.blocks: List[SharedBlock] = []
        if share and isinstance(source, ColumnarRelation):
            # One whole-relation export; each worker gathers its own
            # shard from the shared matrix.  The export is attribute-
            # independent, so a ShardMap reuses it across partitionings
            # of the same relation on different attributes.  ``base`` is
            # a borrowed pre-export (owned by the ShardMap); without one
            # this partitioning exports — and owns — its own block.
            if base is None:
                base, block = export_columnar(source)
                if block is not None:
                    self.blocks.append(block)
            position = (
                source.schema.index_of(attribute) if attribute is not None else None
            )
            payloads = [
                ("shard", base, position, i, n_shards) for i in range(n_shards)
            ]
        else:
            if attribute is None:
                shards = partition_by_blocks(source, n_shards)
            else:
                shards = partition_by_attribute(source, attribute, n_shards)
            payloads = [encode_relation(shard) for shard in shards]
        self.payloads: Tuple[Payload, ...] = tuple(payloads)

    def close(self) -> None:
        """Release the shared-memory blocks backing this partitioning."""
        for block in self.blocks:
            block.close()
        self.blocks = []


class ShardMap:
    """Cache of live :class:`ShardedRelation` per logical source name.

    Entries are stored by *source-relation identity* plus partition
    attribute and shard count, so the same relation object reached under
    two different logical names (a botjoin that is both a table factor
    and a topjoin operand, say) is partitioned — and its shards exported —
    exactly once.  The caller-chosen names (``"node:<id>"``, ``"bot:<id>"``,
    ``"top:<id>"``, ``"atom:<name>"``) only drive :meth:`invalidate`.

    An entry is valid only while its ``source`` is the very relation
    object the caller holds — maintained state swaps relation objects
    wholesale on commit, so staleness is a pointer comparison away.  (The
    entry keeps the source alive, so its ``id`` cannot be reused while
    the entry exists.)
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple, ShardedRelation] = {}
        #: logical name -> identity keys registered under it.
        self._names: Dict[str, set] = {}
        #: id(relation) -> (whole-relation export, owning block, source).
        #: One export serves every partitioning of that relation object,
        #: whatever the attribute.
        self._bases: Dict[int, Tuple[Payload, Optional[SharedBlock], object]] = {}
        # Finalizer sweep: a worker death mid-fold raises through the
        # session without reaching close(), and the per-block SharedBlock
        # finalizers can be pinned by exception tracebacks referencing the
        # entries — sweeping the shared containers when the *map* is
        # collected releases every base export deterministically instead
        # of stranding the segments until interpreter exit.
        self._finalizer = weakref.finalize(
            self, _release_map_state, self._entries, self._names, self._bases
        )

    def _base_for(self, relation: ColumnarRelation) -> Payload:
        rid = id(relation)
        cached = self._bases.get(rid)
        if cached is not None and cached[2] is relation:
            return cached[0]
        if cached is not None and cached[1] is not None:
            cached[1].close()
        payload, block = export_columnar(relation)
        self._bases[rid] = (payload, block, relation)
        return payload

    def _sweep_bases(self) -> None:
        """Release whole-relation exports no entry references anymore."""
        live = {key[0] for key in self._entries}
        for rid in [rid for rid in self._bases if rid not in live]:
            _, block, _ = self._bases.pop(rid)
            if block is not None:
                block.close()

    def get(
        self,
        name: str,
        relation,
        attribute: Optional[str],
        n_shards: int,
        share: bool,
    ) -> ShardedRelation:
        key = (id(relation), attribute, n_shards)
        bucket = self._names.setdefault(name, set())
        # A name re-bound to a new relation object leaves its old
        # partitioning behind under the old id; release it now rather
        # than waiting for an explicit invalidate.
        purged = False
        for old_key in [k for k in bucket if k[1:] == key[1:] and k != key]:
            bucket.discard(old_key)
            old = self._entries.pop(old_key, None)
            if old is not None:
                old.close()
                purged = True
        entry = self._entries.get(key)
        if entry is None or entry.source is not relation:
            if entry is not None:
                entry.close()
            base = (
                self._base_for(relation)
                if share and isinstance(relation, ColumnarRelation)
                else None
            )
            entry = ShardedRelation(relation, attribute, n_shards, share, base=base)
            self._entries[key] = entry
        bucket.add(key)
        if purged:
            self._sweep_bases()
        return entry

    def apply_delta(self, name, new_source, folds) -> bool:
        """Patch the partitionings under ``name`` with a batch's delta folds.

        ``folds`` is the batch's ordered ``[(delta relation, insert)]``
        list for this logical source and ``new_source`` the relation
        object the maintained state just committed.  Each patchable entry
        re-shards only the delta rows — the deltas co-partition with the
        cached shards (same attribute, same hash) so every shard folds
        its own slice via bag union/monus — and is re-keyed to the new
        source identity, keeping the partitioning warm across commits
        instead of forcing a full re-shard on the next read.

        Called from commit paths, so it never raises: entries that cannot
        be patched (shared-memory exports, row-block partitionings,
        backend or vocabulary-generation mismatches, or any unexpected
        failure) fall back to plain invalidation, returning ``False`` —
        the next sharded read rebuilds from ``new_source``.
        """
        bucket = self._names.get(name)
        if not bucket:
            return True
        try:
            for key in list(bucket):
                entry = self._entries.get(key)
                if entry is None:
                    bucket.discard(key)
                    continue
                if entry.source is new_source:
                    # Shared entry already patched under another of its
                    # names during this commit; patching again would
                    # double-apply the folds.
                    continue
                new_entry = self._patched_entry(entry, new_source, folds)
                if new_entry is None:
                    self.invalidate([name])
                    return False
                new_key = (id(new_source), key[1], key[2])
                self._entries.pop(key, None)
                entry.close()
                self._entries[new_key] = new_entry
                # Re-key every logical name holding the old partitioning,
                # so single-atom nodes (same relation object registered as
                # both "atom:R" and "node:v") stay consistent.
                for other_bucket in self._names.values():
                    if key in other_bucket:
                        other_bucket.discard(key)
                        other_bucket.add(new_key)
            self._sweep_bases()
            return True
        except Exception:
            self.invalidate([name])
            return False

    def _patched_entry(self, entry, new_source, folds):
        """A new :class:`ShardedRelation` with the folds applied, or
        ``None`` when this partitioning cannot be patched in place."""
        attribute = entry.attribute
        if attribute is None or entry.blocks:
            return None
        columnar = isinstance(new_source, ColumnarRelation)
        shards: List = []
        for payload in entry.payloads:
            kind = payload[0]
            if kind == "col":
                if not columnar:
                    return None
                vocab = new_source._vocab
                if payload[4] != vocab.generation:
                    # Conservative: stale-generation codes are rebuilt,
                    # not patched, so every live payload stays pinned to
                    # the coordinator's current vocabulary.
                    return None
                shard, _ = decode_relation(payload, lambda g: vocab)
            elif kind == "py":
                if columnar:
                    return None
                shard, _ = decode_relation(payload, lambda g: None)
            else:
                # "shm"/"shard" exports live in shared memory the workers
                # gather from; rebuild those wholesale.
                return None
            shards.append(shard)
        for delta, insert in folds:
            parts = partition_by_attribute(delta, attribute, entry.n_shards)
            for i, part in enumerate(parts):
                if part.is_empty():
                    continue
                shards[i] = (
                    union_all([shards[i], part])
                    if insert
                    else difference(shards[i], part)
                )
        # Cheap end-to-end invariant: the shards must still concatenate
        # to the committed relation (catches a stale entry patched with
        # folds from a database it never reflected).
        if sum(s.total_count() for s in shards) != new_source.total_count():
            return None
        patched = ShardedRelation.__new__(ShardedRelation)
        patched.source = new_source
        patched.attribute = attribute
        patched.n_shards = entry.n_shards
        patched.blocks = []
        patched.payloads = tuple(encode_relation(shard) for shard in shards)
        return patched

    def invalidate(self, names) -> None:
        """Drop (and release) every partitioning of the named sources.

        Called from commit paths, so it never raises: shared-memory
        release errors are already suppressed by :class:`SharedBlock`.
        A shared entry invalidated under one name disappears for all its
        names — its source was replaced, so every name holding the old
        object is stale anyway, and a false positive only costs a rebuild.
        """
        for name in names:
            for key in self._names.pop(name, ()):
                entry = self._entries.pop(key, None)
                if entry is not None:
                    entry.close()
        self._sweep_bases()

    def close(self) -> None:
        """Release every cached partitioning and whole-relation export.

        Idempotent; runs the same sweep the garbage-collection finalizer
        would, and disarms it.
        """
        _release_map_state(self._entries, self._names, self._bases)

    def __len__(self) -> int:
        return len(self._entries)


def _release_map_state(entries, names, bases) -> None:
    """Release a :class:`ShardMap`'s shared-memory state (see its
    ``_finalizer``); module-level so the finalizer holds no reference to
    the map itself."""
    for entry in entries.values():
        entry.close()
    entries.clear()
    names.clear()
    for _, block, _ in bases.values():
        if block is not None:
            block.close()
    bases.clear()
