"""Unit tests for the maintained join-state layer.

The property suite (``tests/property/test_sensitivity_maintenance.py``)
pins end-to-end equivalence of maintained sensitivity reads; these tests
check the :class:`~repro.evaluation.joinstate.JoinState` mechanics
directly — laziness, per-level delta folding against full recomputation,
witness-cache invalidation, selection filtering and staged atomicity.
"""

import pytest

from repro.engine import Database, Relation
from repro.evaluation import JoinState, compute_topjoins
from repro.evaluation.joinstate import table_layout
from repro.query import parse_predicate, parse_query
from repro.query.gyo import gyo_join_tree
from repro.query.jointree import join_tree_from_parents
from repro.exceptions import MultiplicityOverflowError

BACKENDS = ("python", "columnar")


def _state(query, db, backend):
    db = db.with_backend(backend)
    return JoinState(query, gyo_join_tree(query), db), db


def _same_bag(left, right):
    rows = set(left) | set(right)
    assert tuple(left.attributes) == tuple(right.attributes)
    for row in rows:
        assert left.multiplicity(row) == right.multiplicity(row), row


def _assert_levels_match_fresh(state, query, db):
    """Every maintained level equals a freshly built state on ``db``."""
    fresh = JoinState(query, state.tree, db)
    for node_id in state.tree.node_ids:
        _same_bag(state.botjoins[node_id], fresh.botjoins[node_id])
    if state.topjoins_materialised:
        fresh_top = compute_topjoins(fresh.bound, fresh.botjoins)
        for node_id, top in state.topjoins().items():
            if top is None:
                assert fresh_top[node_id] is None
            else:
                _same_bag(top, fresh_top[node_id])
    for relation in state.tables_materialised:
        maintained = state.multiplicity_table(relation)
        rebuilt = fresh.multiplicity_table(relation)
        assert len(maintained.factors) == len(rebuilt.factors)
        for a, b in zip(maintained.factors, rebuilt.factors):
            _same_bag(a, b)


@pytest.mark.parametrize("backend", BACKENDS)
class TestMaintainedLevels:
    def test_fold_matches_fresh_rebuild(self, fig1_query, fig1_db, backend):
        state, db = _state(fig1_query, fig1_db, backend)
        state.topjoins()
        for relation in fig1_query.relation_names:
            state.multiplicity_table(relation)
        updates = [
            ("R1", ("a2", "b2", "c1"), True),
            ("R3", ("a2", "e3"), True),
            ("R2", ("a1", "b1", "d1"), False),
            ("R4", ("b2", "f2"), False),
            ("R1", ("a9", "b9", "c9"), True),  # joins nothing below the node
        ]
        for relation, row, insert in updates:
            report = state.apply_update(relation, row, insert)
            assert not report.filtered
            base = db.relation(relation)
            db = db.with_relation(
                relation, base.add(row) if insert else base.remove(row)
            )
            _assert_levels_match_fresh(state, fig1_query, db)

    def test_deep_path_fold(self, fig3_query, fig3_db, backend):
        state, db = _state(fig3_query, fig3_db, backend)
        state.topjoins()
        for relation in fig3_query.relation_names:
            state.multiplicity_table(relation)
        for relation, row, insert in [
            ("R4", ("d1", "e9"), True),
            ("R1", ("a1", "b1"), False),
            ("R2", ("b2", "c1"), False),
        ]:
            state.apply_update(relation, row, insert)
            base = db.relation(relation)
            db = db.with_relation(
                relation, base.add(row) if insert else base.remove(row)
            )
            _assert_levels_match_fresh(state, fig3_query, db)

    def test_broom_sideways_then_downward_fold(self, backend):
        """A star around a hub plus a two-hop handle: an update in the
        handle stages sibling topjoins at the hub (sideways) whose own
        subtrees then re-propagate (downward) — the deepest composition
        of the root-to-leaf fold."""
        query = parse_query(
            "Q(A,B,C,D,F,G) :- Hub(A,B), S1(A,C), S2(A,D), T1(B,F), T2(F,G)"
        )
        tree = join_tree_from_parents(
            query, "Hub", {"S1": "Hub", "S2": "Hub", "T1": "Hub", "T2": "T1"}
        )
        db = Database(
            {
                "Hub": Relation(["A", "B"], [(0, 1), (1, 1), (1, 2)]),
                "S1": Relation(["A", "C"], [(0, 7), (1, 7), (1, 8)]),
                "S2": Relation(["A", "D"], [(0, 3), (1, 3)]),
                "T1": Relation(["B", "F"], [(1, 4), (2, 4), (2, 5)]),
                "T2": Relation(["F", "G"], [(4, 6), (5, 6), (5, 9)]),
            },
            backend=backend,
        )
        state = JoinState(query, tree, db)
        state.topjoins()
        for relation in query.relation_names:
            state.multiplicity_table(relation)
        for relation, row, insert in [
            ("S1", (1, 9), True),   # star leaf: sideways reaches T1, then T2
            ("T2", (4, 2), True),   # handle tip: up two levels, across, down
            ("T1", (1, 4), False),  # mid-handle delete
            ("Hub", (1, 1), False), # root: pure downward everywhere
        ]:
            state.apply_update(relation, row, insert)
            base = db.relation(relation)
            db = db.with_relation(
                relation, base.add(row) if insert else base.remove(row)
            )
            _assert_levels_match_fresh(state, query, db)

    def test_ghd_multi_atom_node_fold(self, backend):
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = Database(
            {
                "R1": Relation(["A", "B"], [(0, 1), (1, 1), (1, 2)]),
                "R2": Relation(["B", "C"], [(1, 0), (1, 1), (2, 0)]),
                "R3": Relation(["C", "A"], [(0, 0), (0, 1), (1, 1)]),
            },
            backend=backend,
        )
        from repro.query.ghd import auto_decompose

        tree = auto_decompose(query)
        state = JoinState(query, tree, db)
        state.topjoins()
        for relation in query.relation_names:
            state.multiplicity_table(relation)
        for relation, row, insert in [
            ("R1", (1, 1), True),
            ("R2", (1, 1), False),
            ("R3", (0, 0), False),
        ]:
            state.apply_update(relation, row, insert)
            base = db.relation(relation)
            db = db.with_relation(
                relation, base.add(row) if insert else base.remove(row)
            )
            _assert_levels_match_fresh(state, query, db)


@pytest.mark.parametrize("backend", BACKENDS)
class TestLazinessAndInvalidation:
    def test_count_only_sessions_never_materialise(
        self, fig1_query, fig1_db, backend
    ):
        state, _ = _state(fig1_query, fig1_db, backend)
        assert not state.topjoins_materialised
        assert state.tables_materialised == ()
        state.apply_update("R3", ("a1", "e9"), True)
        assert not state.topjoins_materialised
        assert state.tables_materialised == ()

    def test_partial_tables_stay_partial(self, fig1_query, fig1_db, backend):
        state, _ = _state(fig1_query, fig1_db, backend)
        state.multiplicity_table("R3")
        state.apply_update("R4", ("b1", "f9"), True)
        assert state.tables_materialised == ("R3",)

    def test_witness_cache_invalidation(self, fig1_query, fig1_db, backend):
        state, _ = _state(fig1_query, fig1_db, backend)
        before = {}
        for relation in fig1_query.relation_names:
            before[relation] = state.multiplicity_table(relation)
            state.witnesses[relation] = f"cached-{relation}"
        # The updated relation's witness is always dropped (its domain
        # feeds extrapolation); every other relation's witness must be
        # dropped exactly when its table object was patched.
        state.apply_update("R3", ("a1", "e9"), True)
        assert "R3" not in state.witnesses
        for relation in ("R1", "R2", "R4"):
            patched = state.multiplicity_table(relation) is not before[relation]
            assert (relation not in state.witnesses) == patched, relation

    def test_unchanged_tables_keep_witnesses(self, fig1_query, fig1_db, backend):
        state, _ = _state(fig1_query, fig1_db, backend)
        for relation in fig1_query.relation_names:
            state.multiplicity_table(relation)
            state.witnesses[relation] = f"cached-{relation}"
        # A leaf insert whose join value exists nowhere else: the botjoin
        # delta dies at the leaf's parent, so no other table moves and
        # every witness except the updated relation's survives.
        state.apply_update("R3", ("zz", "e9"), True)
        assert "R3" not in state.witnesses
        for relation in ("R1", "R2", "R4"):
            assert state.witnesses[relation] == f"cached-{relation}"

    def test_selection_filtered_row_is_a_no_op(self, backend):
        query = parse_query("R(A,B), S(B,C)").with_selection(
            "R", parse_predicate("A != 0")
        )
        db = Database(
            {
                "R": Relation(["A", "B"], [(1, 2)]),
                "S": Relation(["B", "C"], [(2, 3)]),
            },
            backend=backend,
        )
        state = JoinState(query, gyo_join_tree(query), db)
        state.topjoins()
        before = state.count
        report = state.apply_update("R", (0, 2), True)
        assert report.filtered
        assert report.changed_botjoins == ()
        assert state.count == before


class TestStagedAtomicity:
    def test_overflowing_update_leaves_state_untouched(self):
        # |Q(D)| sits just under int64; the staged fold of one more copy
        # of the R row adds another `big` outputs, overflowing during the
        # staged union — before anything was committed.
        big = (2**63 - 1) // 2
        query = parse_query("R(A,B), S(B,C)")
        db = Database(
            {
                "R": Relation(["A", "B"], {(1, 2): 2}),
                "S": Relation(["B", "C"], {(2, 3): big}),
            },
            backend="columnar",
        )
        state = JoinState(query, gyo_join_tree(query), db)
        state.topjoins()
        for relation in query.relation_names:
            state.multiplicity_table(relation)
        before_count = state.count
        before_atom = state.bound.atom_relation("R")
        before_tables = {
            relation: state.multiplicity_table(relation)
            for relation in query.relation_names
        }
        with pytest.raises(MultiplicityOverflowError):
            state.apply_update("R", (1, 2), True)
        assert state.count == before_count
        assert state.bound.atom_relation("R") is before_atom
        for relation in query.relation_names:
            assert state.multiplicity_table(relation) is before_tables[relation]


class TestTableLayout:
    def test_layout_matches_factored_shape(self, fig1_query):
        tree = gyo_join_tree(fig1_query)
        for relation in fig1_query.relation_names:
            layout = table_layout(fig1_query, tree, relation)
            assert layout.relation == relation
            covered = [a for c in layout.components for a in c.effective]
            assert sorted(covered) == sorted(layout.effective)

    def test_single_relation_query_has_no_parts(self):
        query = parse_query("R(A,B)")
        layout = table_layout(query, gyo_join_tree(query), "R")
        assert layout.components == ()
        assert layout.effective == ()


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchFolds:
    def test_delta_relation_batch_matches_fresh(
        self, fig1_query, fig1_db, backend
    ):
        """One apply_update_batch over whole delta relations lands on the
        same levels as a fresh rebuild on the mutated database."""
        from repro.evaluation.joinstate import RelationDelta

        state, db = _state(fig1_query, fig1_db, backend)
        state.topjoins()
        for relation in fig1_query.relation_names:
            state.multiplicity_table(relation)
        deltas = [
            RelationDelta(
                "R1",
                {("a2", "b2", "c1"): 2, ("a9", "b9", "c9"): 1},
                {("a1", "b1", "c1"): 1},
            ),
            RelationDelta("R3", {("a2", "e3"): 1}, {}),
            RelationDelta("R2", {}, {("a1", "b1", "d1"): 1}),
        ]
        reports = state.apply_update_batch(deltas)
        # One report per signed fold: R1 contributes two, R3/R2 one each.
        assert len(reports) == 4
        for delta in deltas:
            base = db.relation(delta.relation)
            for row, cnt in delta.minus.items():
                base = base.remove(row, cnt)
            for row, cnt in delta.plus.items():
                base = base.add(row, cnt)
            db = db.with_relation(delta.relation, base)
        _assert_levels_match_fresh(state, fig1_query, db)

    def test_single_update_wrapper_matches_batch(
        self, fig1_query, fig1_db, backend
    ):
        from repro.evaluation.joinstate import RelationDelta

        one, db = _state(fig1_query, fig1_db, backend)
        batch, _ = _state(fig1_query, fig1_db, backend)
        one.apply_update("R3", ("a2", "e3"), True)
        batch.apply_update_batch([RelationDelta("R3", {("a2", "e3"): 1}, {})])
        assert one.count == batch.count
        _same_bag(
            one.bound.atom_relation("R3"), batch.bound.atom_relation("R3")
        )


class TestBatchAtomicity:
    def test_overflow_mid_batch_commits_nothing(self):
        """A batch whose second delta overflows must leave every level
        bit-identical: the first delta's staged folds never commit."""
        from repro.evaluation.joinstate import RelationDelta
        from repro.engine.columnar import ColumnarRelation

        big = (2**63 - 1) // 2
        query = parse_query("R(A,B), S(B,C)")
        db = Database(
            {
                "R": Relation(["A", "B"], {(1, 2): 2}),
                "S": Relation(["B", "C"], {(2, 3): big}),
            },
            backend="columnar",
        )
        state = JoinState(query, gyo_join_tree(query), db)
        state.topjoins()
        for relation in query.relation_names:
            state.multiplicity_table(relation)
        before_count = state.count
        before_atoms = {
            relation: state.bound.atom_relation(relation)
            for relation in query.relation_names
        }
        before_bots = dict(state.botjoins)
        before_tables = {
            relation: state.multiplicity_table(relation)
            for relation in query.relation_names
        }
        deltas = [
            RelationDelta("R", {(9, 9): 1}, {}),  # fine on its own
            RelationDelta("R", {(1, 2): 1}, {}),  # overflows 3 * big
        ]
        with pytest.raises(MultiplicityOverflowError):
            state.apply_update_batch(deltas)
        assert state.count == before_count
        for relation in query.relation_names:
            assert state.bound.atom_relation(relation) is before_atoms[relation]
            assert state.multiplicity_table(relation) is before_tables[relation]
        for node_id, bot in state.botjoins.items():
            assert bot is before_bots[node_id]
        # Still fully usable afterwards: (9, 9) joins nothing, so the
        # count is unchanged but the atom did commit this time.
        report = state.apply_update("R", (9, 9), True)
        assert not report.filtered
        assert state.count == before_count
        assert state.bound.atom_relation("R").multiplicity((9, 9)) == 1
