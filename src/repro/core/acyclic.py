"""TSens — Algorithm 2, local sensitivity of acyclic (and decomposed) CQs.

Given a join tree (or generalized hypertree decomposition) ``T`` for a
connected full CQ without self-joins, TSens makes two passes over ``T``:

1. **Botjoins** ``K(v)`` in post-order (Eqn. 5/7) — multiplicities of the
   partial joins of the subtree rooted at ``v``, grouped on the attributes
   shared with the parent.
2. **Topjoins** ``J(v)`` in pre-order (Eqn. 4/8) — multiplicities of the
   partial joins of the *complement* of ``v``'s subtree, again grouped on
   the shared attributes.

The **multiplicity table** ``T^i`` of a relation ``R_i`` assigned to node
``v`` joins the topjoin of ``v``, the botjoins of ``v``'s children, and the
*other* relations materialised inside ``v`` (Sec. 5.4 "General joins"),
grouped on ``R_i``'s effective attributes.  ``T^i[t]`` is simultaneously the
upward and the downward tuple sensitivity of ``t`` because the join excludes
``R_i`` itself — adding or removing ``t`` adds or removes exactly ``T^i[t]``
output tuples.

The local sensitivity is the max entry over all multiplicity tables
(Theorem 5.1); the argmax row, extended with extrapolated values for
exclusive attributes, is the most sensitive tuple.

All of this state — bound tree, botjoins, topjoins, tables — lives in a
:class:`~repro.evaluation.joinstate.JoinState`.  One-shot callers build a
throwaway instance per call (this module's public signatures are
unchanged); sessions pass their *maintained* instance, whose structures
were folded under committed updates instead of rebuilt, and additionally
reuse cached per-relation witnesses for tables no update has touched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.evaluation.joinstate import JoinState, build_table, table_layout
from repro.evaluation.yannakakis import BoundTree, compute_topjoins
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.gyo import gyo_join_tree
from repro.query.jointree import DecompositionTree
from repro.core.result import MultiplicityTable, SensitiveTuple, SensitivityResult
from repro.exceptions import InternalError, QueryStructureError

__all__ = [
    "best_witness",
    "compute_topjoins",
    "extrapolate_assignment",
    "multiplicity_table",
    "select_overall_witness",
    "tsens_connected",
]


def multiplicity_table(
    bound: BoundTree,
    botjoins: Dict[str, Relation],
    topjoins: Dict[str, Optional[Relation]],
    relation: str,
) -> MultiplicityTable:
    """The paper's ``T^i`` (Eqn. 6) for one base relation.

    Joins everything *except* ``relation``: the node's topjoin, the node's
    children botjoins, and the other relations assigned to the same node,
    then groups by the relation's effective attributes.

    The paper notes (Sec. 5.2) that these partial joins "may not share any
    attributes in general" — materialising their cross product is exactly
    the ``n^d`` blow-up of Theorem 5.1.  We avoid it losslessly: the parts
    split into attribute-connected components, ``γ`` distributes over the
    cross product of components, and the result is stored as a *factored*
    :class:`~repro.core.result.MultiplicityTable` (the same representation
    Algorithm 1 uses for path queries), so doubly acyclic queries never pay
    the cross product.

    This explicit-dicts form exists for callers that substitute their own
    botjoins/topjoins (the top-k clamping approximation); everyone else
    reads tables straight off a :class:`JoinState`, which shares the same
    symbolic layout so maintained and freshly built tables are identical.
    """
    layout = table_layout(bound.query, bound.tree, relation)

    def part_value(part):
        if part.kind == "top":
            top = topjoins[part.key]
            if top is None:  # layouts never reference the root topjoin
                raise InternalError(
                    f"table layout references root topjoin {part.key}"
                )
            return top
        if part.kind == "bot":
            return botjoins[part.key]
        return bound.atom_relation(part.key)

    return build_table(layout, part_value)


def best_witness(
    table: MultiplicityTable,
    query: ConjunctiveQuery,
    db: Database,
    relation: str,
) -> SensitiveTuple:
    """The most sensitive tuple of ``relation`` honouring its selection.

    Without a selection predicate this is the table argmax.  With one,
    entries stream out in descending sensitivity until the first whose
    extrapolated full assignment satisfies the predicate — matching the
    paper's rule that tuples failing the selection have sensitivity 0.
    (Exclusive attributes take their fixed representative value, exactly
    as the brute-force Theorem 3.1 enumeration does.)
    """
    predicate = query.selections.get(relation)
    if predicate is None:
        partial, sensitivity = table.argmax()
        if partial is None:
            return SensitiveTuple(relation, {}, 0)
        assignment = extrapolate_assignment(query, db, relation, partial)
        return SensitiveTuple(relation, assignment, sensitivity)
    for partial, sensitivity in table.iter_descending():
        if sensitivity == 0:
            break
        assignment = extrapolate_assignment(query, db, relation, dict(partial))
        if predicate(assignment):
            return SensitiveTuple(relation, assignment, sensitivity)
    return SensitiveTuple(relation, {}, 0)


def extrapolate_assignment(
    query: ConjunctiveQuery,
    db: Database,
    relation: str,
    partial: Dict[str, object],
) -> Dict[str, object]:
    """Fill values for exclusive attributes of ``relation`` (Sec. 5.4).

    Exclusive attributes do not affect the sensitivity, so any value works;
    we take the relation's representative-domain pick for determinism.
    """
    assignment = dict(partial)
    atom = query.atom(relation)
    base_attrs = db.relation(relation).schema.attributes
    var_to_column = dict(zip(atom.variables, base_attrs))
    for var in query.exclusive_variables(relation):
        if var not in assignment:
            column = var_to_column[var]
            domain = db.representative_domain(column, relation)
            assignment[var] = min(domain, key=repr)
    return assignment


def select_overall_witness(
    per_relation: Dict[str, SensitiveTuple],
) -> Tuple[int, Optional[SensitiveTuple]]:
    """``LS(Q, D)`` and one witness from the per-relation maxima.

    Ties prefer a witness with a concrete assignment, then relation order
    — the deterministic rule every TSens variant shares.
    """
    local = max((w.sensitivity for w in per_relation.values()), default=0)
    if local <= 0:
        return local, None
    candidates = [w for w in per_relation.values() if w.sensitivity == local]
    with_assignment = [w for w in candidates if w.assignment]
    return local, (with_assignment or candidates)[0]


def tsens_connected(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Iterable[str] = (),
    state: Optional[JoinState] = None,
) -> SensitivityResult:
    """TSens over a connected query.

    Parameters
    ----------
    query:
        Connected full CQ without self-joins.
    db:
        Database instance.
    tree:
        Join tree / GHD covering the query.  Defaults to the GYO join tree
        (the query must then be acyclic).  Ignored when ``state`` is given.
    skip_relations:
        Relations whose multiplicity table is not computed; the paper skips
        relations whose attributes form a superkey of the join output
        (tuple sensitivity ≤ 1, e.g. LINEITEM in q3) to avoid a huge table.
        Skipped relations get sensitivity bound 1 with no witness table.
    state:
        A maintained :class:`JoinState` bound to ``db`` (the session
        layer's, kept consistent under committed updates).  When absent a
        throwaway state is built, which is exactly the historical one-shot
        computation.
    """
    if not query.is_connected():
        raise QueryStructureError(
            "tsens_connected needs a connected query; use local_sensitivity()"
        )
    if state is None:
        if tree is None:
            tree = gyo_join_tree(query)
    else:
        tree = state.tree
    if not tree.covers_query(query):
        raise QueryStructureError(
            f"decomposition does not cover query {query.name}"
        )
    if state is None:
        state = JoinState(query, tree, db)
    skip = set(skip_relations)

    tables: Dict[str, MultiplicityTable] = {}
    per_relation: Dict[str, SensitiveTuple] = {}
    for relation in query.relation_names:
        if relation in skip:
            # The caller certifies δ ≤ 1 for this relation (e.g. its
            # attributes form a superkey of the join output, as for
            # LINEITEM in the paper's q3); record the bound, no table.
            per_relation[relation] = SensitiveTuple(relation, {}, 1)
            continue
        table = state.multiplicity_table(relation)
        tables[relation] = table
        witness = state.witnesses.get(relation)
        if witness is None:
            witness = best_witness(table, query, db, relation)
            state.witnesses[relation] = witness
        per_relation[relation] = witness  # type: ignore[assignment]

    local, witness = select_overall_witness(per_relation)
    return SensitivityResult(
        query_name=query.name,
        method="tsens",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables=tables,
    )
