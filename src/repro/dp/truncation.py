"""TSens truncation (Definition 6.4).

``T_TSens(Q, D, i)`` keeps every tuple of the primary private relation whose
tuple sensitivity is at most ``i`` (other relations pass through).  Two key
facts the mechanism relies on:

* the tuple sensitivities come straight from TSens's multiplicity tables —
  no re-evaluation per tuple;
* ``Q(T_TSens(Q, ·, τ))`` has global sensitivity ``τ``: a tuple with
  sensitivity above ``τ`` is truncated before it can affect the count, and
  any surviving tuple changes the count by at most its sensitivity ≤ τ.

:class:`TruncationOracle` additionally caches the truncated counts: the
count only changes when the threshold crosses one of the distinct
sensitivity values present in the relation, so an SVT sweep over
``i = 1..ℓ`` costs one evaluation per distinct level, not per ``i``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.engine.database import Database
from repro.engine.relation import Relation, Row
from repro.evaluation.yannakakis import count_query
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.core.api import local_sensitivity
from repro.core.result import SensitivityResult
from repro.dp.marking import declassified
from repro.exceptions import MechanismConfigError


@declassified(reason="pre-DP utility: input to a mechanism, not a release")
def tuple_sensitivities(
    query: ConjunctiveQuery,
    db: Database,
    relation: str,
    result: Optional[SensitivityResult] = None,
    tree: Optional[DecompositionTree] = None,
) -> Dict[Row, int]:
    """``δ(t, Q, D)`` for every distinct tuple of ``relation``.

    Looks each tuple up in the TSens multiplicity table (computing TSens
    first when no ``result`` is supplied).  Tuples failing the query's
    selection predicate, or not joining with the rest of the database,
    get sensitivity 0.
    """
    if result is None:
        result = local_sensitivity(query, db, tree=tree)
    table = result.table(relation)
    atom = query.atom(relation)
    predicate = query.selections.get(relation)
    sensitivities: Dict[Row, int] = {}
    for row in db.relation(relation):
        assignment = dict(zip(atom.variables, row))
        if predicate is not None and not predicate(assignment):
            sensitivities[row] = 0
            continue
        sensitivities[row] = table.sensitivity_of(assignment)
    return sensitivities


@declassified(reason="pre-DP utility: input to a mechanism, not a release")
def tsens_truncate(
    query: ConjunctiveQuery,
    db: Database,
    primary: str,
    threshold: int,
    result: Optional[SensitivityResult] = None,
    tree: Optional[DecompositionTree] = None,
) -> Database:
    """``T_TSens(Q, D, threshold)`` — Definition 6.4.

    Removes (all copies of) primary-relation tuples whose tuple sensitivity
    exceeds ``threshold``; every other relation is untouched.
    """
    if threshold < 0:
        raise MechanismConfigError(f"threshold must be >= 0, got {threshold}")
    sensitivities = tuple_sensitivities(query, db, primary, result=result, tree=tree)
    base = db.relation(primary)
    kept = {
        row: cnt
        for row, cnt in base.items()
        if sensitivities[row] <= threshold
    }
    return db.with_relation(primary, type(base)._from_counts(base.schema, kept))


class TruncationOracle:
    """Caches ``|Q(T_TSens(Q, D, i))|`` across thresholds.

    Parameters
    ----------
    query, db:
        The query and instance.
    primary:
        The primary private relation being truncated.
    tree:
        Decomposition for both TSens and the count evaluations.
    result:
        A precomputed TSens result (must include the primary's table).
    skip_relations:
        Passed through to TSens when it must be computed here.
    base_count:
        ``|Q(D)|`` when the caller already holds it — the session layer
        passes its maintained count so building an oracle after updates
        skips the full re-evaluation; defaults to counting here.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        primary: str,
        tree: Optional[DecompositionTree] = None,
        result: Optional[SensitivityResult] = None,
        skip_relations: Tuple[str, ...] = (),
        base_count: Optional[int] = None,
    ):
        self._query = query
        self._db = db
        self._primary = primary
        self._tree = tree
        if result is None:
            result = local_sensitivity(
                query, db, tree=tree, skip_relations=skip_relations
            )
        self.sensitivity_result = result
        self._sensitivities = tuple_sensitivities(
            query, db, primary, result=result, tree=tree
        )
        # Distinct sensitivity levels, ascending; thresholds between two
        # levels produce identical truncations.
        self._levels: List[int] = sorted(set(self._sensitivities.values()))
        if base_count is None:
            base_count = count_query(query, db, tree=tree)
        self._base_count = base_count
        # Because the primary relation appears exactly once in the query
        # (no self-joins), every output tuple matches exactly one distinct
        # primary row, and removing a row with multiplicity c and tuple
        # sensitivity δ removes exactly c·δ outputs.  Truncated counts are
        # therefore base − Σ_{δ(r) > i} mult(r)·δ(r): precompute the
        # removed-output mass per level and its suffix sums.
        base_relation = db.relation(primary)
        mass_per_level: Dict[int, int] = {}
        for row, cnt in base_relation.items():
            level = self._sensitivities[row]
            mass_per_level[level] = mass_per_level.get(level, 0) + cnt * level
        self._suffix_removed: List[int] = [0] * (len(self._levels) + 1)
        for index in range(len(self._levels) - 1, -1, -1):
            self._suffix_removed[index] = self._suffix_removed[index + 1] + (
                mass_per_level.get(self._levels[index], 0)
            )

    @property
    @declassified(reason="diagnostic accessor; mechanisms only use it pre-DP")
    def local_sensitivity(self) -> int:
        """``LS(Q, D)`` as computed by TSens."""
        return self.sensitivity_result.local_sensitivity

    @property
    def base_count(self) -> int:
        """``|Q(D)|`` on the untruncated database."""
        return self._base_count

    @property
    def max_primary_sensitivity(self) -> int:
        """Largest tuple sensitivity among the primary's existing tuples."""
        return self._levels[-1] if self._levels else 0

    def _level_key(self, threshold: int) -> int:
        """Index of the highest level ≤ threshold (−1 when all exceed)."""
        return bisect_right(self._levels, threshold) - 1

    def truncated_database(self, threshold: int) -> Database:
        """``T_TSens(Q, D, threshold)`` (uncached; use for final answers)."""
        base = self._db.relation(self._primary)
        kept = {
            row: cnt
            for row, cnt in base.items()
            if self._sensitivities[row] <= threshold
        }
        return self._db.with_relation(
            self._primary, type(base)._from_counts(base.schema, kept)
        )

    def truncated_count(self, threshold: int) -> int:
        """``|Q(T_TSens(Q, D, threshold))|`` in O(log #levels).

        Uses the suffix-sum decomposition (see ``__init__``); the
        equivalence with a full re-evaluation on the truncated database is
        covered by property tests.
        """
        key = self._level_key(threshold)
        return self._base_count - self._suffix_removed[key + 1]

    @declassified(reason="testing cross-check for truncated_count")
    def truncated_count_reevaluated(self, threshold: int) -> int:
        """``|Q(T_TSens(Q, D, threshold))|`` by actually re-running the
        query on the truncated database — the cross-check for
        :meth:`truncated_count`."""
        return count_query(
            self._query, self.truncated_database(threshold), tree=self._tree
        )

    def truncated_fraction(self, threshold: int) -> float:
        """Fraction of primary tuples (bag-weighted) removed at ``threshold``."""
        base = self._db.relation(self._primary)
        total = base.total_count()
        if total == 0:
            return 0.0
        removed = sum(
            cnt
            for row, cnt in base.items()
            if self._sensitivities[row] > threshold
        )
        return removed / total
