"""Query evaluation over decomposition trees (Yannakakis-style)."""

from repro.evaluation.incremental import PROBE_ATTRIBUTE, IncrementalEvaluator
from repro.evaluation.joinstate import AppliedUpdate, JoinState
from repro.evaluation.yannakakis import (
    BoundTree,
    bind,
    compute_botjoins,
    compute_topjoins,
    count_bound,
    count_query,
    default_tree,
    evaluate_bound,
    evaluate_query,
    naive_join,
    semijoin_reduce,
)

__all__ = [
    "AppliedUpdate",
    "BoundTree",
    "IncrementalEvaluator",
    "JoinState",
    "PROBE_ATTRIBUTE",
    "bind",
    "compute_botjoins",
    "compute_topjoins",
    "count_bound",
    "count_query",
    "default_tree",
    "evaluate_bound",
    "evaluate_query",
    "naive_join",
    "semijoin_reduce",
]
