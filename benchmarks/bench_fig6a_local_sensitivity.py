"""Benchmark E1 — Figure 6a: TSens vs Elastic local sensitivity (TPC-H).

Measures one TSens pass per TPC-H query and records, via ``extra_info``,
the sensitivity values whose *ratio* is the figure's claim: Elastic is a
few-fold looser on q1/q2 and orders of magnitude looser on the cyclic q3.
"""

import pytest

from repro.baselines import elastic_sensitivity, plan_from_tree
from repro.core import local_sensitivity
from repro.query import auto_decompose
from repro.workloads import q1_workload, q2_workload, q3_workload


def _run(workload, base, benchmark):
    db = workload.prepared(base)
    tree = workload.tree or auto_decompose(workload.query)
    result = benchmark.pedantic(
        lambda: local_sensitivity(
            workload.query, db, tree=workload.tree,
            skip_relations=workload.skip_relations,
        ),
        rounds=3,
        iterations=1,
    )
    elastic = elastic_sensitivity(workload.query, db, plan=plan_from_tree(tree))
    benchmark.extra_info["tsens_ls"] = result.local_sensitivity
    benchmark.extra_info["elastic_ls"] = elastic
    assert result.local_sensitivity <= elastic
    return result, elastic


def test_fig6a_q1(benchmark, tpch_base):
    _run(q1_workload(), tpch_base, benchmark)


def test_fig6a_q2(benchmark, tpch_base):
    _run(q2_workload(), tpch_base, benchmark)


def test_fig6a_q3(benchmark, tpch_base):
    result, elastic = _run(q3_workload(), tpch_base, benchmark)
    # The cyclic query is where Elastic explodes (paper: up to 2.2M×).
    assert elastic > 50 * result.local_sensitivity
