"""Known-bad for R003: session mutations without cache invalidation.

Fixture only — parsed by the analyzer, never imported or executed.
"""


class PreparedQuery:
    def apply(self, update):
        self._db = self._apply_update(self._db, update)  # caches now stale
        return self._db

    def reset(self, db, refresh=False):
        self._db = db
        if refresh:  # invalidation happens on one path only
            self._invalidate_caches()

    def _invalidate_caches(self):
        self._results.clear()
