"""Unit tests for TSens (Algorithm 2) — :mod:`repro.core.acyclic`."""

import pytest

from repro.core import naive_local_sensitivity, tsens, tsens_connected
from repro.core.acyclic import compute_topjoins
from repro.engine import Database, Relation
from repro.evaluation import bind, compute_botjoins
from repro.query import auto_decompose, ghd_from_groups, gyo_join_tree, parse_query
from repro.exceptions import QueryStructureError


class TestPaperExample:
    """Example 2.1 / Figure 1: LS = 4 with witness (a2, b2, c1) in R1."""

    def test_local_sensitivity(self, fig1_query, fig1_db):
        result = tsens(fig1_query, fig1_db)
        assert result.local_sensitivity == 4

    def test_witness(self, fig1_query, fig1_db):
        result = tsens(fig1_query, fig1_db)
        assert result.witness.relation == "R1"
        assert dict(result.witness.assignment) == {
            "A": "a2", "B": "b2", "C": "c1"
        }

    def test_downward_sensitivity_of_existing_tuple(self, fig1_query, fig1_db):
        # Example 2.1: (a1, b1, c1) in R1 has sensitivity 1.
        result = tsens(fig1_query, fig1_db)
        delta = result.tuple_sensitivity(
            "R1", {"A": "a1", "B": "b1", "C": "c1"}
        )
        assert delta == 1

    def test_absent_tuple_sensitivity_zero(self, fig1_query, fig1_db):
        # (a2, b2, c1) is not in D so its downward sensitivity is 0 — but
        # the table stores max(up, down) = 4.  A combination absent from
        # the representative domain must be 0.
        result = tsens(fig1_query, fig1_db)
        assert result.tuple_sensitivity("R1", {"A": "zz", "B": "b1", "C": "?"}) == 0

    def test_agrees_with_naive(self, fig1_query, fig1_db):
        fast = tsens(fig1_query, fig1_db)
        slow = naive_local_sensitivity(fig1_query, fig1_db)
        assert fast.local_sensitivity == slow.local_sensitivity
        for relation in fig1_query.relation_names:
            assert (
                fast.per_relation[relation].sensitivity
                == slow.per_relation[relation].sensitivity
            )


class TestTopjoinsBotjoins:
    def test_topjoin_of_root_is_none(self, fig1_query, fig1_db):
        tree = gyo_join_tree(fig1_query)
        bound = bind(fig1_query, tree, fig1_db)
        botjoins = compute_botjoins(bound)
        topjoins = compute_topjoins(bound, botjoins)
        assert topjoins[tree.root] is None

    def test_topjoin_schema_is_shared_attrs(self, fig1_query, fig1_db):
        tree = gyo_join_tree(fig1_query)
        bound = bind(fig1_query, tree, fig1_db)
        botjoins = compute_botjoins(bound)
        topjoins = compute_topjoins(bound, botjoins)
        for node_id in tree.node_ids:
            if node_id == tree.root:
                continue
            expected = tree.shared_with_parent(node_id)
            assert set(topjoins[node_id].attributes) == set(expected)


class TestEdgeCases:
    def test_single_relation_ls_is_one(self):
        q = parse_query("R(A,B)")
        db = Database({"R": Relation(["A", "B"], [(1, 2), (3, 4)])})
        result = tsens(q, db)
        assert result.local_sensitivity == 1

    def test_empty_relation_insertion_counts(self):
        # NP-hardness flavour: R0 empty, the others join; LS > 0 comes
        # entirely from inserting into R0.
        q = parse_query("R0(A,B), R1(A,B)")
        db = Database(
            {
                "R0": Relation(["A", "B"], ()),
                "R1": Relation(["A", "B"], [(1, 2), (1, 2)]),
            }
        )
        result = tsens(q, db)
        assert result.local_sensitivity == 2
        assert result.witness.relation == "R0"
        assert dict(result.witness.assignment) == {"A": 1, "B": 2}

    def test_all_empty_ls_zero(self):
        q = parse_query("R(A,B), S(B,C)")
        db = Database(
            {"R": Relation(["A", "B"], ()), "S": Relation(["B", "C"], ())}
        )
        result = tsens(q, db)
        assert result.local_sensitivity == 0
        assert result.witness is None

    def test_duplicate_tuples_multiply(self):
        q = parse_query("R(A), S(A)")
        db = Database(
            {"R": Relation(["A"], {(1,): 5}), "S": Relation(["A"], {(1,): 1})}
        )
        # Adding another S(1) creates 5 new outputs.
        result = tsens(q, db)
        assert result.local_sensitivity == 5
        assert result.witness.relation == "S"

    def test_disconnected_query_requires_wrapper(self, fig1_query, fig1_db):
        q = parse_query("R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], [(1,)]), "S": Relation(["B"], [(2,)])}
        )
        with pytest.raises(QueryStructureError):
            tsens_connected(q, db)

    def test_mismatched_tree_rejected(self, fig1_query, fig1_db, fig3_query):
        tree = gyo_join_tree(fig3_query)
        with pytest.raises(QueryStructureError):
            tsens_connected(fig1_query, fig1_db, tree=tree)


class TestSkipRelations:
    def test_skip_returns_bound_one(self, fig1_query, fig1_db):
        result = tsens(fig1_query, fig1_db, skip_relations=("R1",))
        assert result.per_relation["R1"].sensitivity == 1
        assert "R1" not in result.tables
        # Without R1's table the max comes from the others (R2: 2).
        assert result.local_sensitivity == 2

    def test_skip_all_relations(self, fig1_query, fig1_db):
        result = tsens(
            fig1_query, fig1_db, skip_relations=tuple(fig1_query.relation_names)
        )
        assert result.local_sensitivity == 1


class TestSelections:
    def test_failing_selection_zeroes_sensitivity(self, fig1_query, fig1_db):
        # Filter R3 to only a1 rows: inserting (a2, b2, c1) into R1 now
        # finds no R3 partner, so the old witness dies.
        filtered = fig1_query.with_selection("R3", lambda row: row["A"] == "a1")
        result = tsens(filtered, fig1_db)
        naive = naive_local_sensitivity(filtered, fig1_db)
        assert result.local_sensitivity == naive.local_sensitivity

    def test_selection_on_counting_attribute(self, fig3_query, fig3_db):
        filtered = fig3_query.with_selection("R4", lambda row: row["E"] != "e4")
        result = tsens(filtered, fig3_db)
        naive = naive_local_sensitivity(filtered, fig3_db)
        assert result.local_sensitivity == naive.local_sensitivity


class TestGhdNodes:
    def test_triangle_matches_naive(self, triangle_query, triangle_db):
        tree = auto_decompose(triangle_query)
        result = tsens(triangle_query, triangle_db, tree=tree)
        naive = naive_local_sensitivity(triangle_query, triangle_db)
        assert result.local_sensitivity == naive.local_sensitivity
        for relation in triangle_query.relation_names:
            assert (
                result.per_relation[relation].sensitivity
                == naive.per_relation[relation].sensitivity
            )

    def test_explicit_paper_style_ghd(self, triangle_query, triangle_db):
        tree = ghd_from_groups(
            triangle_query,
            groups={"g12": ["R1", "R2"], "g3": ["R3"]},
            root="g12",
            parent={"g3": "g12"},
        )
        result = tsens(triangle_query, triangle_db, tree=tree)
        naive = naive_local_sensitivity(triangle_query, triangle_db)
        assert result.local_sensitivity == naive.local_sensitivity

    def test_four_cycle_matches_naive(self):
        q = parse_query("R1(A,B), R2(B,C), R3(C,D), R4(D,A)")
        db = Database(
            {
                "R1": Relation(["A", "B"], [(0, 1), (0, 2)]),
                "R2": Relation(["B", "C"], [(1, 3), (2, 3)]),
                "R3": Relation(["C", "D"], [(3, 4), (3, 5)]),
                "R4": Relation(["D", "A"], [(4, 0), (5, 0)]),
            }
        )
        result = tsens(q, db)
        naive = naive_local_sensitivity(q, db)
        assert result.local_sensitivity == naive.local_sensitivity


class TestDisconnected:
    def test_components_multiply(self):
        q = parse_query("R(A,B), S(C)")
        db = Database(
            {
                "R": Relation(["A", "B"], [(1, 2), (1, 3)]),
                "S": Relation(["C"], [(7,), (8,), (9,)]),
            }
        )
        result = tsens(q, db)
        naive = naive_local_sensitivity(q, db)
        # Adding S(x) adds |R| = 2 outputs; adding R(1, y) adds |S| = 3.
        assert naive.local_sensitivity == 3
        assert result.local_sensitivity == 3

    def test_empty_component_zeroes_other(self):
        q = parse_query("R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], ()), "S": Relation(["B"], [(1,)] * 4)}
        )
        result = tsens(q, db)
        # Adding one R tuple creates 4 outputs; adding S tuples creates 0.
        assert result.local_sensitivity == 4
        assert result.witness.relation == "R"
