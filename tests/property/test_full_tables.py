"""The strongest equivalence property: full multiplicity-table contents.

Not just the argmax — for random instances, *every* tuple sensitivity the
TSens tables report (for existing tuples and for representative-domain
insertion candidates) must equal the value obtained by direct
re-evaluation.  This is the property that justifies using the tables for
truncation-based DP.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ls_path_join, tsens
from repro.core.naive import naive_tuple_sensitivity
from repro.datasets import random_acyclic_query, random_database, random_path_query

seeds = st.integers(min_value=0, max_value=10_000)


def _check_tables(result, query, db, max_candidates=60):
    checked = 0
    for relation in query.relation_names:
        table = result.tables[relation]
        atom = query.atom(relation)
        # Existing tuples (downward side).
        for row in db.relation(relation):
            claimed = table.sensitivity_of(dict(zip(atom.variables, row)))
            measured = naive_tuple_sensitivity(query, db, relation, row)
            assert claimed == measured, (relation, row, claimed, measured)
            checked += 1
            if checked > max_candidates:
                return
        # Representative-domain candidates (upward side).
        for row in db.representative_tuples(relation):
            claimed = table.sensitivity_of(dict(zip(atom.variables, row)))
            measured = naive_tuple_sensitivity(query, db, relation, row)
            assert claimed == measured, (relation, row, claimed, measured)
            checked += 1
            if checked > max_candidates:
                return


class TestFullTableEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_tsens_tables_exact(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng, max_rows=4)
        result = tsens(query, db)
        _check_tables(result, query, db)

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_path_tables_exact(self, seed, length):
        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=length)
        db = random_database(query, rng, max_rows=4)
        result = ls_path_join(query, db)
        _check_tables(result, query, db)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_ghd_tables_exact(self, seed):
        from repro.query import parse_query

        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=2, max_rows=4)
        result = tsens(query, db)
        _check_tables(result, query, db)
