"""Known-good: epochs.py itself owns the boundary and is exempt."""


def read(session, fn):
    # The real epochs.py goes through public session methods, but even
    # internals are legal here: this module *is* the lease boundary.
    with session.lock:
        return fn(session._evaluator)
