"""Random queries and databases for property-based testing.

Generators used by the hypothesis/test suites to cross-check TSens against
the naive algorithm on thousands of small random instances:

* :func:`random_acyclic_query` — a random join tree turned into a query
  (each tree edge contributes 1–2 shared variables; nodes may get an
  exclusive variable);
* :func:`random_path_query` — a chain with optional endpoint decorations;
* :func:`random_database` — a random instance for any query, drawing each
  attribute's values from a small shared domain so joins actually happen;
* :func:`random_update_stream` — a reproducible insert/delete stream over
  a query's relations, for the session-maintenance benchmarks and tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery


def random_acyclic_query(
    rng: np.random.Generator,
    num_atoms: int = 4,
    extra_shared_probability: float = 0.3,
    exclusive_probability: float = 0.3,
) -> ConjunctiveQuery:
    """A random connected acyclic query built from a random tree.

    Each non-root atom shares one (sometimes two) fresh variables with its
    parent atom; atoms independently gain an exclusive variable.  The
    construction guarantees GYO-acyclicity: the tree itself is a join tree.
    """
    variable_counter = 0

    def fresh() -> str:
        nonlocal variable_counter
        variable_counter += 1
        return f"V{variable_counter}"

    parents = [int(rng.integers(0, i)) if i else -1 for i in range(num_atoms)]
    atom_vars: List[List[str]] = [[] for _ in range(num_atoms)]
    for i in range(1, num_atoms):
        shared = [fresh()]
        if rng.random() < extra_shared_probability:
            shared.append(fresh())
        atom_vars[i].extend(shared)
        atom_vars[parents[i]].extend(shared)
    for i in range(num_atoms):
        if not atom_vars[i] or rng.random() < exclusive_probability:
            atom_vars[i].append(fresh())
    atoms = [Atom(f"T{i}", tuple(atom_vars[i])) for i in range(num_atoms)]
    return ConjunctiveQuery(atoms, name="Qrand")


def random_path_query(
    rng: np.random.Generator, length: int = 4
) -> ConjunctiveQuery:
    """A random path query ``R1(A0,A1), ..., Rm(Am-1,Am)``; endpoints may
    drop their free attribute (unary ends, like TPC-H ``Region``)."""
    atoms: List[Atom] = []
    for i in range(length):
        variables: List[str] = []
        if i > 0:
            variables.append(f"A{i}")
        elif rng.random() < 0.7:
            variables.append("A0")
        if i < length - 1:
            variables.append(f"A{i + 1}")
        elif rng.random() < 0.7:
            variables.append(f"A{length}")
        if not variables:
            variables.append(f"A{i}x")
        atoms.append(Atom(f"P{i + 1}", tuple(variables)))
    return ConjunctiveQuery(atoms, name="Qpath")


def random_database(
    query: ConjunctiveQuery,
    rng: np.random.Generator,
    domain_size: int = 3,
    max_rows: int = 6,
    allow_empty: bool = True,
    backend: str = "python",
) -> Database:
    """A random instance for ``query``: every attribute draws from a shared
    integer domain of ``domain_size`` values; each relation gets up to
    ``max_rows`` rows (possibly zero when ``allow_empty``).  ``backend``
    picks the physical representation (contents are identical)."""
    relations: Dict[str, Relation] = {}
    for atom in query.atoms:
        low = 0 if allow_empty else 1
        n_rows = int(rng.integers(low, max_rows + 1))
        rows = [
            tuple(int(rng.integers(0, domain_size)) for _ in atom.variables)
            for _ in range(n_rows)
        ]
        relations[atom.relation] = Relation(list(atom.variables), rows)
    return Database(relations, backend=backend)


def random_update_stream(
    query: ConjunctiveQuery,
    db: Database,
    rng: np.random.Generator,
    length: int,
    insert_fraction: float = 0.5,
    domain_size: int = 5,
) -> List[Tuple[str, str, Tuple]]:
    """A reproducible ``(op, relation, row)`` insert/delete stream.

    Drives the session benchmarks and equivalence tests.  Inserts mostly
    duplicate or perturb rows the stream has seen for the relation (so
    updates actually join); deletes draw from the same pool, which tracks
    earlier stream inserts to keep deletes meaningful on a live session.
    Relations are picked uniformly per step.
    """
    stream: List[Tuple[str, str, Tuple]] = []
    pools = {rel: list(db.relation(rel)) for rel in query.relation_names}
    names = query.relation_names
    for _ in range(length):
        relation = names[int(rng.integers(0, len(names)))]
        atom = query.atom(relation)
        pool = pools[relation]
        if not pool or rng.random() < insert_fraction:
            if pool and rng.random() < 0.8:
                row = list(pool[int(rng.integers(0, len(pool)))])
                if rng.random() < 0.5:
                    # Splice one position from another pooled row so some
                    # inserts create genuinely new join combinations.
                    donor = pool[int(rng.integers(0, len(pool)))]
                    position = int(rng.integers(0, atom.arity))
                    row[position] = donor[position]
                row = tuple(row)
            else:
                row = tuple(
                    int(rng.integers(0, domain_size)) for _ in atom.variables
                )
            pool.append(row)
            stream.append(("insert", relation, row))
        else:
            row = pool.pop(int(rng.integers(0, len(pool))))
            stream.append(("delete", relation, row))
    return stream
