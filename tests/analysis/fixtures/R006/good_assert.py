"""Known-good for R006: invariants raise real exceptions.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def pick_parent(tree, node_id):
    parent = tree.parent(node_id)
    if parent is None:
        raise InternalError(f"non-root node {node_id} has no parent")
    return parent
