"""Unit tests for the PrivSQL-style baseline."""

import numpy as np
import pytest

from repro.dp import affected_relations, run_privsql
from repro.dp.privsql import _truncate_by_frequency
from repro.engine import Database, ForeignKey, Relation
from repro.query import parse_query


@pytest.fixture
def keyed_db():
    """Customer -> Orders chain with one heavy customer."""
    customers = [(ck,) for ck in range(5)]
    orders = [(0, ok) for ok in range(10)] + [(ck, 100 + ck) for ck in range(1, 5)]
    return Database(
        {
            "C": Relation(["CK"], customers),
            "O": Relation(["CK", "OK"], orders),
        },
        primary_keys={"C": ("CK",)},
        foreign_keys=[ForeignKey("O", ("CK",), "C", ("CK",))],
    )


@pytest.fixture
def query():
    return parse_query("Q(CK,OK) :- C(CK), O(CK,OK)")


class TestPolicy:
    def test_affected_relations_bfs(self, keyed_db):
        edges = affected_relations(keyed_db, "C")
        assert [fk.child for fk in edges] == ["O"]

    def test_affected_relations_chain(self):
        db = Database(
            {
                "A": Relation(["K"], [(1,)]),
                "B": Relation(["K", "L"], [(1, 2)]),
                "C": Relation(["L", "M"], [(2, 3)]),
            },
            foreign_keys=[
                ForeignKey("B", ("K",), "A", ("K",)),
                ForeignKey("C", ("L",), "B", ("L",)),
            ],
        )
        edges = affected_relations(db, "A")
        assert [fk.child for fk in edges] == ["B", "C"]

    def test_no_foreign_keys_no_truncation(self, query):
        db = Database(
            {
                "C": Relation(["CK"], [(1,)]),
                "O": Relation(["CK", "OK"], [(1, 2)]),
            }
        )
        out = run_privsql(
            query, db, primary="C", epsilon=1.0, rng=np.random.default_rng(0)
        )
        assert out.thresholds == {}
        assert out.bias == 0


class TestFrequencyTruncation:
    def test_drops_whole_groups(self):
        rel = Relation(["CK", "OK"], [(0, 1), (0, 2), (0, 3), (1, 9)])
        out = _truncate_by_frequency(rel, ("CK",), threshold=2)
        assert dict(out.items()) == {(1, 9): 1}

    def test_threshold_at_max_keeps_all(self):
        rel = Relation(["CK", "OK"], [(0, 1), (0, 2), (1, 9)])
        assert _truncate_by_frequency(rel, ("CK",), 2).total_count() == 3


class TestMechanism:
    def test_outcome_fields(self, query, keyed_db):
        out = run_privsql(
            query, keyed_db, primary="C", epsilon=1.0,
            rng=np.random.default_rng(1),
        )
        assert out.true_count == 14
        assert out.global_sensitivity >= 1
        assert "O" in out.thresholds
        assert sum(out.ledger.values()) == pytest.approx(1.0)

    def test_deterministic_under_seed(self, query, keyed_db):
        a = run_privsql(
            query, keyed_db, primary="C", epsilon=1.0,
            rng=np.random.default_rng(3),
        )
        b = run_privsql(
            query, keyed_db, primary="C", epsilon=1.0,
            rng=np.random.default_rng(3),
        )
        assert a.answer == b.answer and a.thresholds == b.thresholds

    def test_clamps_negative(self, query, keyed_db):
        for seed in range(10):
            out = run_privsql(
                query, keyed_db, primary="C", epsilon=0.01,
                rng=np.random.default_rng(seed),
            )
            assert out.answer >= 0.0

    def test_large_epsilon_learns_max_frequency(self, query, keyed_db):
        out = run_privsql(
            query, keyed_db, primary="C", epsilon=200.0,
            rng=np.random.default_rng(4),
        )
        # The heavy customer has 10 orders; with negligible noise the SVT
        # stops at the first threshold where no group overflows.
        assert out.thresholds["O"] == 10
        assert out.bias == 0
