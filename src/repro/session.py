"""Prepared-query sessions: plan once, answer many times.

Every historical entry point (:func:`repro.core.api.local_sensitivity`,
the DP runners, the CLI) was a stateless one-shot function: each call
re-parsed, re-classified, re-decomposed, re-bound and re-counted.  A
:class:`PreparedQuery` does that planning exactly once —

* classify the query shape (path / acyclic / cyclic / disconnected),
* build the decomposition (GYO join tree or automatic GHD) per connected
  component,
* on first use, bind the tree and materialise the cached join-tree counts
  of :class:`~repro.evaluation.incremental.IncrementalEvaluator` —

and then serves repeated reads (:meth:`~PreparedQuery.count`,
:meth:`~PreparedQuery.sensitivity`, :meth:`~PreparedQuery.top_k`,
:meth:`~PreparedQuery.most_sensitive`, :meth:`~PreparedQuery.explain`),
unified DP releases over the three mechanisms
(:meth:`~PreparedQuery.release` with
:class:`~repro.dp.accountant.BudgetAccountant` integration), and a
*stream of committed updates* (:meth:`~PreparedQuery.insert`,
:meth:`~PreparedQuery.delete`, :meth:`~PreparedQuery.apply`) that
maintain the cached state — never a full rebuild.

Maintenance covers the whole TSens join-state, not just counts: each
component's :class:`~repro.evaluation.joinstate.JoinState` folds every
committed update into its botjoins (leaf-to-root), topjoins
(root-to-leaf) and factored multiplicity tables (one patched factor),
so sensitivity reads after updates refresh from maintained structures.
Result objects are cached per configuration and invalidated exactly
when a mutation lands, so a session is always observationally
equivalent to a fresh session over its current database (pinned by
``tests/property/test_session_equivalence.py`` and
``tests/property/test_sensitivity_maintenance.py``).

Quickstart::

    from repro import prepare

    session = prepare(query, db)             # plan once
    session.count()                          # |Q(D)| from cached state
    session.sensitivity().local_sensitivity  # LS(Q, D), cached
    session.insert("R", (1, 2))              # O(path) maintenance
    session.count()                          # maintained, no rebuild
    session.release(1.0, mechanism="tsensdp", primary="R", ell=50)

**Thread safety.**  Every public read (``count``, ``sensitivity``,
``top_k``, ``most_sensitive``, ``explain``, ``probe``, ``stats``,
``release``, ``truncation_oracle``) and every mutation (``insert``,
``delete``, ``apply``) serialises on one re-entrant lock per session
(:attr:`PreparedQuery.lock`), so a read can never interleave with a
half-committed update batch: it observes the session either entirely
before or entirely after any concurrent ``apply``.  Callers needing a
*sequence* of reads against one consistent snapshot hold the lock
themselves (``with session.lock: ...``) — or use the epoch-pinned
serving layer in :mod:`repro.serve`, which builds multi-reader /
single-writer snapshot semantics on top of this contract.
"""

from __future__ import annotations

import threading

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.parallel import ParallelContext
from repro.evaluation.incremental import IncrementalEvaluator, compact_updates
from repro.evaluation.yannakakis import _component_trees
from repro.query.classify import is_path_query
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.core.explain import Explanation, explain as _explain
from repro.core.general import tsens_from_states
from repro.core.naive import naive_local_sensitivity
from repro.core.path import PathState, ls_path_join
from repro.core.result import SensitiveTuple, SensitivityResult
from repro.core.topk import tsens_topk
from repro.exceptions import (
    InternalError,
    MechanismConfigError,
    ReproError,
    SessionError,
    UnknownRelationError,
)

#: Mechanisms the :meth:`PreparedQuery.release` facade dispatches over.
RELEASE_MECHANISMS: Tuple[str, ...] = ("tsensdp", "flexdp", "privsql")

#: Update operations understood by :meth:`PreparedQuery.apply`.
_INSERT_OPS = frozenset({"insert", "+"})
_DELETE_OPS = frozenset({"delete", "-"})

#: An update-stream element: ``(op, relation, row)``.
Update = Tuple[str, str, Sequence[object]]


def prepare(
    query: ConjunctiveQuery,
    db: Database,
    backend: Optional[str] = None,
    tree: Optional[DecompositionTree] = None,
    max_width: int = 3,
    workers: int = 1,
    parallel=None,
) -> "PreparedQuery":
    """Plan ``query`` over ``db`` once and return the reusable session.

    Parameters
    ----------
    query:
        Full conjunctive query without self-joins, optionally with
        per-atom selections.
    db:
        Database instance.  The session never mutates the caller's
        object; committed updates produce fresh immutable snapshots
        reachable via :attr:`PreparedQuery.db`.
    backend:
        Optional execution-backend name (``"python"``/``"columnar"``);
        when given, the database is converted up front so every cached
        structure lives on that backend.
    tree:
        Decomposition override for connected queries.  Supplying one
        disables the path-algorithm shortcut, exactly as in
        :func:`repro.core.api.local_sensitivity`.
    max_width:
        GHD node-size cap for automatic decomposition of cyclic queries.
    workers:
        Sharded-execution fan-out.  The default ``1`` is the serial path,
        bit-identical to sessions prepared before this knob existed.
        ``workers=N`` (N > 1) keeps N worker processes alive for the
        session's lifetime and hash-shards the heavy botjoin/topjoin/table
        builds across them (:mod:`repro.engine.parallel`); results are
        exactly equal either way.  Call :meth:`PreparedQuery.close` (or
        use the session as a context manager) to release the workers.
    parallel:
        A pre-built :class:`~repro.engine.parallel.ParallelContext` to
        share across sessions (overrides ``workers``); the caller keeps
        ownership and closes it.

    Examples
    --------
    >>> from repro.query import parse_query
    >>> from repro.engine import Database, Relation
    >>> q = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    >>> db = Database({
    ...     "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
    ...     "S": Relation(["B", "C"], [(2, 4)]),
    ... })
    >>> session = prepare(q, db)
    >>> session.count()
    2
    >>> session.sensitivity().local_sensitivity
    2
    >>> session.insert("S", (2, 5))
    4
    >>> session.sensitivity().local_sensitivity
    2
    """
    if backend is not None:
        db = db.with_backend(backend)
    return PreparedQuery(
        query, db, tree=tree, max_width=max_width, workers=workers, parallel=parallel
    )


def rebuild_per_update_counts(
    query: ConjunctiveQuery,
    db: Database,
    stream: Iterable[Update],
    tree: Optional[DecompositionTree] = None,
    max_width: int = 3,
) -> List[int]:
    """The rebuild-per-update strawman: ``|Q(D)|`` after each stream element,
    re-planning from scratch every time.

    This is the historical usage pattern a maintained
    :class:`PreparedQuery` replaces, kept as the shared baseline (and
    exact-equivalence oracle) for the session benchmarks — the CLI
    ``bench-session`` command and ``benchmarks/bench_session_updates.py``
    both measure against this exact loop.
    """
    counts: List[int] = []
    current = db
    for op, relation, row in stream:
        if op in _INSERT_OPS:
            current = current.add_tuple(relation, row)
        elif op in _DELETE_OPS:
            current = current.remove_tuple(relation, row)
        else:
            raise SessionError(
                f"unknown update op {op!r} (use 'insert' or 'delete')"
            )
        counts.append(
            prepare(query, current, tree=tree, max_width=max_width).count()
        )
    return counts


class PreparedQuery:
    """A query planned once, serving reads, DP releases and updates.

    Use :func:`prepare` to construct.  All methods answer against the
    session's *current* database (:attr:`db`), which advances with every
    committed update; cached results are invalidated on mutation and
    recomputed lazily, so any read is equivalent to the corresponding
    one-shot function on :attr:`db`.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        tree: Optional[DecompositionTree] = None,
        max_width: int = 3,
        workers: int = 1,
        parallel=None,
    ):
        query.validate_against(db)
        self._query = query
        self._db = db
        self._user_tree = tree
        self._max_width = max_width
        # One re-entrant lock serialises every public read and mutation;
        # see the module docstring's thread-safety contract.
        self._lock = threading.RLock()
        if parallel is not None:
            self._parallel = parallel
            self._owns_parallel = False
        elif workers > 1:
            self._parallel = ParallelContext(workers)
            self._owns_parallel = True
        else:
            if workers < 1:
                raise SessionError(f"workers must be >= 1, got {workers}")
            self._parallel = None
            self._owns_parallel = False
        # Planned once: classification + per-component decomposition.
        self._is_path = tree is None and is_path_query(query)
        self._pairs: List[Tuple[ConjunctiveQuery, DecompositionTree]] = list(
            _component_trees(query, tree, max_width)
        )
        # Built on first count/update/reeval use.
        self._evaluator: Optional[IncrementalEvaluator] = None
        # Maintained two-sweep state for ``method="path"`` reads, built on
        # the first such read and folded under committed batches.  A pure
        # cache: dropped (never rolled back) when a fold fails.
        self._path_state: Optional[PathState] = None
        # (kind, config) -> result caches, cleared on every mutation.
        self._results: Dict[Tuple, object] = {}
        self._oracles: Dict[Tuple, object] = {}
        self._updates_applied = 0

    # ------------------------------------------------------------- accessors
    @property
    def query(self) -> ConjunctiveQuery:
        return self._query

    @property
    def db(self) -> Database:
        """The current database snapshot (advances with committed updates)."""
        return self._db

    @property
    def backend(self) -> str:
        """Execution backend the session's relations live on."""
        return self._db.backend

    @property
    def tree(self) -> Optional[DecompositionTree]:
        """The prepared decomposition for connected queries (``None`` when
        the query is disconnected — see :attr:`component_trees`)."""
        if len(self._pairs) == 1:
            return self._pairs[0][1]
        return None

    @property
    def component_trees(
        self,
    ) -> Tuple[Tuple[ConjunctiveQuery, DecompositionTree], ...]:
        """The prepared ``(subquery, decomposition)`` pair per component."""
        return tuple(self._pairs)

    @property
    def updates_applied(self) -> int:
        """Number of committed updates since :func:`prepare`."""
        return self._updates_applied

    @property
    def workers(self) -> int:
        """Sharded-execution fan-out (1 = serial)."""
        return self._parallel.workers if self._parallel is not None else 1

    @property
    def lock(self) -> "threading.RLock":
        """The session's state lock (re-entrant).

        Every public read and mutation acquires it internally, so single
        calls are always atomic with respect to a concurrent
        :meth:`apply`.  Hold it explicitly to make a *sequence* of reads
        observe one consistent snapshot::

            with session.lock:
                count = session.count()
                ls = session.sensitivity().local_sensitivity

        The serving layer's writer thread holds this lock across its
        fold-and-swap step, which is what pins head-epoch readers to
        fully committed state.
        """
        return self._lock

    def close(self) -> None:
        """Release sharded-execution resources.

        Drops the per-component shared-memory shard maps and, when the
        session owns its :class:`~repro.engine.parallel.ParallelContext`
        (built from ``workers=N``), shuts the worker processes down.
        Serial sessions no-op.  Idempotent; reads keep working afterwards
        via the serial path state already materialised.
        """
        with self._lock:
            if self._evaluator is not None:
                for state in self._evaluator.component_states:
                    state.close()
            if self._owns_parallel and self._parallel is not None:
                self._parallel.close()

    def __enter__(self) -> "PreparedQuery":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self._query.name}, backend={self.backend}, "
            f"components={len(self._pairs)}, updates={self._updates_applied})"
        )

    # ----------------------------------------------------------------- reads
    def _ensure_evaluator(self) -> IncrementalEvaluator:
        if self._evaluator is None:
            self._evaluator = IncrementalEvaluator(
                self._query,
                self._db,
                max_width=self._max_width,
                component_pairs=self._pairs,
                parallel=self._parallel,
            )
        return self._evaluator

    def _states(self):
        """The maintained per-component join states (botjoins eagerly,
        topjoins/tables lazily) that committed updates fold deltas into.
        Every TSens-family read goes through these, so a read after an
        update refreshes from maintained state instead of recomputing
        the bind/botjoin/topjoin/table pipeline from scratch."""
        return self._ensure_evaluator().component_states

    def count(self) -> int:
        """``|Q(D)|`` on the current database, from maintained state."""
        with self._lock:
            return self._ensure_evaluator().base_count

    def probe(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> List[int]:
        """``w(t)`` for every probe tuple — hypothetical count-change
        magnitudes, from cached join-tree state.

        ``w(t)`` is the number of join results one occurrence of ``t``
        participates in: inserting one occurrence of ``rows[i]`` into
        ``relation`` would yield ``count() + probe(...)[i]``, deleting an
        existing occurrence ``count() - probe(...)[i]``.  All rows ride
        one probe-id-tagged delta relation through a single leaf-to-root
        propagation pass (vectorized on the columnar backend), so probing
        a thousand tuples costs one pass, not a thousand — this is the
        kernel the serving layer's admission queue coalesces concurrent
        probe requests onto.  The database is not modified.
        """
        with self._lock:
            return self._ensure_evaluator().delta_batch(
                relation, [tuple(row) for row in rows]
            )

    def sensitivity(
        self,
        method: str = "auto",
        skip_relations: Iterable[str] = (),
        top_k: Optional[int] = None,
        reeval_mode: str = "incremental",
    ) -> SensitivityResult:
        """``LS(Q, D)`` and witnesses — the session form of
        :func:`repro.core.api.local_sensitivity`.

        Parameters and semantics match the one-shot function; the
        decomposition prepared at session creation is reused instead of
        being re-derived, and results are cached per configuration until
        the next committed update.
        """
        if method not in ("auto", "path", "tsens", "naive", "reeval"):
            raise MechanismConfigError(f"unknown method {method!r}")
        if method == "auto":
            # Resolve before caching so e.g. an "auto" read and an explicit
            # "tsens" read of the same non-path query share one result.
            method = "path" if self._is_path else "tsens"
        skip = tuple(skip_relations)
        key = (
            "sensitivity",
            method,
            tuple(sorted(skip)),
            top_k,
            reeval_mode if method == "reeval" else None,
        )
        with self._lock:
            if key not in self._results:
                self._results[key] = self._compute_sensitivity(
                    method, skip, top_k, reeval_mode
                )
            return self._results[key]  # type: ignore[return-value]

    def _compute_sensitivity(
        self,
        method: str,
        skip: Tuple[str, ...],
        top_k: Optional[int],
        reeval_mode: str,
    ) -> SensitivityResult:
        if method == "naive":
            return naive_local_sensitivity(self._query, self._db)
        if method == "reeval":
            if top_k is not None or skip:
                raise MechanismConfigError(
                    "method='reeval' supports neither top_k nor skip_relations; "
                    "use method='tsens' for those knobs"
                )
            # Imported lazily: repro.baselines imports repro.core.result, so
            # a top-level import would cycle during package initialisation.
            from repro.baselines.reeval import reevaluation_sensitivity

            evaluator = (
                self._ensure_evaluator() if reeval_mode == "incremental" else None
            )
            return reevaluation_sensitivity(
                self._query,
                self._db,
                tree=self._user_tree,
                mode=reeval_mode,
                max_width=self._max_width,
                evaluator=evaluator,
            )
        if top_k is not None:
            # The clamped passes rerun per call (clamping is not linear),
            # but the maintained state supplies the bound tree whenever
            # the prepared tree is the one the one-shot call would use —
            # cyclic auto-GHDs keep their historical error surface.
            tree = self._join_tree_or_user_tree()
            state = None
            if len(self._pairs) == 1 and tree is self._pairs[0][1]:
                state = self._states()[0]
            return tsens_topk(
                self._query,
                self._db,
                k=top_k,
                tree=tree,
                skip_relations=skip,
                state=state,
            )
        if method == "path":
            if self._is_path:
                return ls_path_join(
                    self._query, self._db, state=self._ensure_path_state()
                )
            return ls_path_join(self._query, self._db)
        return tsens_from_states(
            self._query, self._db, self._states(), skip_relations=skip
        )

    def _join_tree_or_user_tree(self) -> Optional[DecompositionTree]:
        """The prepared tree when it is a plain join tree, else the user's.

        ``tsens_topk`` only accepts width-1 join trees; handing it the
        prepared GYO tree skips a re-derivation while keeping the error
        behaviour for cyclic queries identical to the one-shot API.
        """
        if self._user_tree is not None:
            return self._user_tree
        if len(self._pairs) == 1 and self._pairs[0][1].width() == 1:
            return self._pairs[0][1]
        return None

    def top_k(
        self, k: int, skip_relations: Iterable[str] = ()
    ) -> SensitivityResult:
        """The Sec. 5.4 top-k clamping upper bound (``tsens-top<k>``)."""
        return self.sensitivity(top_k=k, skip_relations=skip_relations)

    def most_sensitive(
        self, skip_relations: Iterable[str] = ()
    ) -> Mapping[str, SensitiveTuple]:
        """Per-relation most sensitive tuples (the paper's Fig. 6b view)."""
        return self.sensitivity(
            method="tsens", skip_relations=skip_relations
        ).per_relation

    def explain(self, skip_relations: Iterable[str] = ()) -> Explanation:
        """TSens cost profile over the prepared decomposition.

        Profiles the *maintained* join state: the botjoins/topjoins/tables
        the session already holds (folded under updates) are measured in
        place rather than recomputed.  Disconnected queries keep the
        one-shot error surface (``explain`` covers connected queries).
        """
        skip = tuple(skip_relations)
        key = ("explain", tuple(sorted(skip)))
        with self._lock:
            if key not in self._results:
                state = self._states()[0] if len(self._pairs) == 1 else None
                self._results[key] = _explain(
                    self._query,
                    self._db,
                    tree=self.tree,
                    skip_relations=skip,
                    state=state,
                )
            return self._results[key]  # type: ignore[return-value]

    def stats(self) -> Dict[str, object]:
        """Epoch/state metadata for operational monitoring.

        A plain JSON-able dictionary describing the session: execution
        backend, worker fan-out, per-relation cardinalities, how many
        updates have been committed, and — once the evaluator exists —
        which maintained levels each component has materialised (botjoin
        node count, topjoins, multiplicity tables).  Everything here is
        structural metadata, not query answers; the server's ``stats``
        endpoint and ``repro explain`` both surface it.
        """
        with self._lock:
            maintained: List[Dict[str, object]] = []
            if self._evaluator is not None:
                for state in self._evaluator.component_states:
                    resident = getattr(state, "resident", None)
                    maintained.append(
                        {
                            "relations": list(state.query.relation_names),
                            "nodes": len(state.tree.node_ids),
                            "botjoins": len(state.botjoins),
                            "topjoins_materialised": state.topjoins_materialised,
                            "tables_materialised": list(
                                state.tables_materialised
                            ),
                            "resident_pipeline": (
                                resident is not None and resident.enabled
                            ),
                            "resident_registers": (
                                len(resident.state.registers)
                                if resident is not None and resident.enabled
                                else 0
                            ),
                        }
                    )
            return {
                "query": str(self._query),
                "backend": self.backend,
                "workers": self.workers,
                "components": len(self._pairs),
                "is_path": self._is_path,
                "relation_cardinalities": {
                    name: self._db.relation(name).total_count()
                    for name in self._query.relation_names
                },
                "updates_applied": self._updates_applied,
                "evaluator_built": self._evaluator is not None,
                "path_state_maintained": self._path_state is not None,
                "cached_results": len(self._results),
                "cached_oracles": len(self._oracles),
                "maintained_components": maintained,
            }

    def fork(self, db: Optional[Database] = None) -> "PreparedQuery":
        """A fresh, independent session with this session's configuration.

        Re-plans the same query (deterministically, so the decomposition
        is identical) over ``db`` — by default the session's *current*
        snapshot.  The fork shares nothing mutable with its parent: it
        has its own lock, caches, and maintained state, and always runs
        serially (``workers=1``).  The serving layer uses forks to answer
        reads pinned to superseded epochs from their frozen snapshots
        while the live session advances.
        """
        with self._lock:
            target = self._db if db is None else db
            return PreparedQuery(
                self._query,
                target,
                tree=self._user_tree,
                max_width=self._max_width,
            )

    # -------------------------------------------------------------- releases
    def release(
        self,
        epsilon: float,
        mechanism: str = "tsensdp",
        primary: Optional[str] = None,
        accountant=None,
        rng=None,
        ell: Optional[int] = None,
        delta: float = 1e-6,
        skip_relations: Iterable[str] = (),
        clamp_nonnegative: bool = True,
        max_threshold: int = 4096,
    ):
        """Release ``|Q(D)|`` under ε-DP through one of the three mechanisms.

        A facade over :func:`repro.dp.tsensdp.run_tsens_dp`,
        :func:`repro.dp.flexdp.run_flex_dp` and
        :func:`repro.dp.privsql.run_privsql` that reuses the session's
        cached sensitivity result and truncation oracle, so repeated
        releases on an unchanged database skip all sensitivity work.

        Parameters
        ----------
        epsilon:
            Privacy budget for *this* release.
        mechanism:
            ``"tsensdp"`` (truncation at a learned threshold),
            ``"flexdp"`` (smooth elastic sensitivity, (ε, δ)-DP) or
            ``"privsql"`` (frequency-cap truncation via foreign keys).
        primary:
            The primary private relation.  Required.
        accountant:
            Optional :class:`~repro.dp.accountant.BudgetAccountant`
            tracking a *total* budget across releases; ``epsilon`` is
            drawn from it (raising
            :class:`~repro.exceptions.PrivacyBudgetError` on overdraft)
            before the mechanism runs.
        ell:
            Public tuple-sensitivity bound (tsensdp only; required there).
        delta:
            The δ of (ε, δ)-DP (flexdp only).
        skip_relations:
            Relations certified δ ≤ 1, skipped by the sensitivity pass
            (tsensdp only).
        clamp_nonnegative:
            Clamp the released count at 0 (free post-processing).
        max_threshold:
            Upper end of PrivSQL's frequency-cap scan (privsql only).

        Returns
        -------
        The mechanism's outcome object (``TSensDPOutcome`` /
        ``FlexDPOutcome`` / ``PrivSQLOutcome``), carrying the release in
        ``.answer`` plus non-private diagnostics.
        """
        if mechanism not in RELEASE_MECHANISMS:
            raise MechanismConfigError(
                f"unknown mechanism {mechanism!r} "
                f"(known: {', '.join(RELEASE_MECHANISMS)})"
            )
        if primary is None:
            raise MechanismConfigError(
                "release() needs primary=<private relation name>"
            )
        if primary not in self._query.relation_names:
            raise MechanismConfigError(
                f"primary {primary!r} is not a relation of {self._query.name}"
            )
        # Every pure-configuration check must precede the accountant spend:
        # a release that dies on bad config must not burn privacy budget.
        if mechanism == "tsensdp" and ell is None:
            raise MechanismConfigError(
                "mechanism='tsensdp' needs ell=<public sensitivity bound>"
            )
        if mechanism == "tsensdp" and ell < 1:
            raise MechanismConfigError(f"ell must be >= 1, got {ell}")
        if mechanism == "flexdp" and not 0 < delta < 1:
            raise MechanismConfigError(f"delta must be in (0,1), got {delta}")
        with self._lock:
            if accountant is not None:
                accountant.spend(epsilon, f"{mechanism}:{primary}")
            skip = tuple(skip_relations)
            if mechanism == "tsensdp":
                # DP runners import the one-shot API whose wrapper lives
                # above this module; import lazily to avoid an
                # initialisation cycle.
                from repro.dp.tsensdp import run_tsens_dp

                return run_tsens_dp(
                    self._query,
                    self._db,
                    primary,
                    epsilon,
                    ell,
                    tree=self.tree,
                    skip_relations=skip,
                    oracle=self.truncation_oracle(primary, skip),
                    rng=rng,
                    clamp_nonnegative=clamp_nonnegative,
                )
            if mechanism == "flexdp":
                from repro.dp.flexdp import run_flex_dp

                return run_flex_dp(
                    self._query,
                    self._db,
                    primary,
                    epsilon,
                    delta=delta,
                    tree=self.tree,
                    rng=rng,
                    clamp_nonnegative=clamp_nonnegative,
                )
            from repro.dp.privsql import run_privsql

            return run_privsql(
                self._query,
                self._db,
                primary,
                epsilon,
                tree=self.tree,
                max_threshold=max_threshold,
                rng=rng,
                clamp_nonnegative=clamp_nonnegative,
            )

    def truncation_oracle(
        self, primary: str, skip_relations: Iterable[str] = ()
    ):
        """The session's cached :class:`~repro.dp.truncation.TruncationOracle`
        for ``primary`` — per-tuple sensitivities, truncated counts across
        thresholds, and ``max_primary_sensitivity``.  Shared with
        ``release(mechanism="tsensdp")`` and invalidated on mutation."""
        from repro.dp.truncation import TruncationOracle

        skip = tuple(skip_relations)
        key = (primary, tuple(sorted(skip)))
        with self._lock:
            if key not in self._oracles:
                # Both expensive oracle inputs come off the maintained
                # state: the sensitivity result (tables folded under
                # updates) and the base count (root botjoins) — the oracle
                # itself only rescans the primary relation's tuple
                # sensitivities.
                self._oracles[key] = TruncationOracle(
                    self._query,
                    self._db,
                    primary,
                    tree=self.tree,
                    result=self.sensitivity(skip_relations=skip),
                    skip_relations=skip,
                    base_count=self.count(),
                )
            return self._oracles[key]

    # --------------------------------------------------------------- updates
    def insert(self, relation: str, row: Sequence[object]) -> int:
        """Commit ``D ← D ∪ {t}``; returns the maintained ``|Q(D)|``.

        Only the touched leaf-to-root path of the cached join-tree counts
        is recomputed; sensitivity/witness/oracle caches are invalidated.
        """
        return self._apply_parsed([(True, relation, tuple(row))])

    def delete(self, relation: str, row: Sequence[object]) -> int:
        """Commit ``D ← D \\ {t}`` (no-op when absent); returns ``|Q(D)|``."""
        return self._apply_parsed([(False, relation, tuple(row))])

    def apply(self, batch: Iterable[Update]) -> int:
        """Commit a stream of ``("insert"|"delete", relation, row)`` updates
        atomically; returns the maintained count after the whole batch.

        ``"+"`` / ``"-"`` are accepted as op shorthands.  The stream is
        *compacted* before execution — per relation, opposite-signed
        updates of the same tuple cancel (replaying the paper's
        clamped-delete semantics against the pre-batch database) and
        same-signed duplicates coalesce — and the surviving signed delta
        relations fold into every maintained structure in one vectorized
        pass each.  The batch is all-or-nothing: every element is
        validated up front, the folds are staged, and a failure anywhere
        (malformed element, unknown op or relation, count overflow)
        raises without committing — the session stays bit-identical to
        its pre-batch state.  On success :attr:`updates_applied` advances
        by the number of stream elements (compaction is an execution
        strategy, not a semantic change) and caches are invalidated once,
        not per element.
        """
        updates: List[Tuple[bool, str, Tuple[object, ...]]] = []
        for element in batch:
            try:
                op, relation, row = element
                row = tuple(row)
            except (TypeError, ValueError):
                raise SessionError(
                    f"malformed update {element!r}; expected (op, relation, row)"
                ) from None
            if op in _INSERT_OPS:
                insert = True
            elif op in _DELETE_OPS:
                insert = False
            else:
                raise SessionError(
                    f"unknown update op {op!r} (use 'insert' or 'delete')"
                )
            updates.append((insert, relation, row))
        return self._apply_parsed(updates)

    def _apply_parsed(
        self, updates: List[Tuple[bool, str, Tuple[object, ...]]]
    ) -> int:
        """Compact, validate, fold and commit a parsed update stream."""
        with self._lock:
            evaluator = self._ensure_evaluator()
            if not updates:
                return evaluator.base_count
            for _insert, relation, _row in updates:
                # Checked here (not just in the evaluator) because a batch
                # of absent-row deletes compacts to nothing and would
                # otherwise skip the evaluator's own validation.
                if relation not in self._query.relation_names:
                    raise UnknownRelationError(relation)
            deltas = compact_updates(evaluator.db, updates)
            count = evaluator.apply_batch(deltas)
            self._fold_path_state(deltas)
            # Even a fully-cancelled batch committed: the database is
            # bitwise unchanged but the stream elements were applied.
            self._after_mutation(len(updates))
            return count

    def _ensure_path_state(self) -> PathState:
        if self._path_state is None:
            self._path_state = PathState(self._query, self._db)
        return self._path_state

    def _fold_path_state(self, deltas) -> None:
        """Fold committed deltas into the maintained path sweeps, if any.

        The evaluator has already committed, so a failing fold must not
        abort the batch: expected engine errors drop the state (the next
        ``method="path"`` read rebuilds from :attr:`db`); anything else
        also drops it but propagates — a genuine bug should not hide
        behind the cache.
        """
        if self._path_state is None:
            return
        try:
            for delta in deltas:
                self._path_state.apply_relation_delta(
                    delta.relation, delta.plus, delta.minus
                )
        except ReproError:
            self._path_state = None
        except Exception:
            self._path_state = None
            raise

    def _after_mutation(self, n: int = 1) -> None:
        if self._evaluator is None:
            raise InternalError("mutation applied before the evaluator was built")
        self._db = self._evaluator.db
        self._updates_applied += n
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        """Drop every cache keyed against the pre-mutation database.

        Lint rule R003 requires any method that rebinds the tracked
        database field to route through this helper, so a new cache can
        never be forgotten at one of the mutation sites.
        """
        self._results.clear()
        self._oracles.clear()
