"""FlexDP — the elastic/smooth-sensitivity mechanism of Johnson et al.

The TSens paper compares against Flex's *sensitivity estimates*; for the DP
ablations we also reproduce Flex's full mechanism so all three approaches
(TSensDP, PrivSQL, FlexDP) answer the same queries:

1. compute elastic sensitivity at every distance ``k``
   (:func:`repro.baselines.elastic.elastic_sensitivity_at_distance`);
2. form the β-smooth upper bound ``S = max_k e^{-βk} · Ŝ^(k)(Q, D)`` with
   ``β = ε / (2·ln(2/δ))``;
3. release ``Q(D) + Lap(2·S/ε)``, which is (ε, δ)-differentially private
   by the smooth-sensitivity framework of Nissim et al.

Because ``Ŝ^(k)`` grows polynomially in ``k`` (degree ≤ number of joins)
while the discount decays exponentially, the maximum is attained at small
``k``; the search stops after the discounted series has decreased long
enough for the polynomial bound to guarantee no later rebound.

Note: for the self-join-free CQ class this library targets, a single
protected relation's distance-``k`` frequencies only ever multiply the
zero sensitivities of the other relations, so ``Ŝ^(k)`` is constant in
``k`` and the smooth bound collapses to ``Ŝ^(0)`` at distance 0.  The
full machinery is kept because it is Flex's actual mechanism (and the
ablation benches exercise it); with self-joins the series would grow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.baselines.elastic import (
    JoinPlan,
    elastic_sensitivity_at_distance,
    plan_from_tree,
)
from repro.engine.database import Database
from repro.evaluation.yannakakis import count_query
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.dp.marking import declassified
from repro.dp.primitives import laplace_mechanism
from repro.exceptions import MechanismConfigError


@dataclass
class FlexDPOutcome:
    """One run of FlexDP (fields mirror the other mechanisms' outcomes)."""

    answer: float
    smooth_sensitivity: float
    beta: float
    peak_distance: int
    true_count: int
    epsilon: float
    delta: float

    @property
    def error(self) -> float:
        return abs(self.answer - self.true_count)

    @property
    def relative_error(self) -> float:
        if self.true_count == 0:
            return 0.0
        return self.error / self.true_count


def smooth_elastic_sensitivity(
    query: ConjunctiveQuery,
    db: Database,
    protected: str,
    beta: float,
    plan: Optional[JoinPlan] = None,
    tree: Optional[DecompositionTree] = None,
    max_distance: int = 10_000,
) -> tuple:
    """``max_k e^{-βk} · Ŝ^(k)`` and the arg-max distance.

    The scan stops once the discounted value has fallen for
    ``ceil(m/β)``-ish consecutive steps — beyond the peak of a degree-m
    polynomial times ``e^{-βk}`` the series is monotone decreasing, so a
    long decrease certifies the global maximum was seen.
    """
    if beta <= 0:
        raise MechanismConfigError(f"beta must be positive, got {beta}")
    degree = max(1, len(query.relation_names))
    patience = max(10, int(math.ceil(degree / beta)))
    best_value, best_distance = 0.0, 0
    decreasing_streak = 0
    previous = None
    for k in range(max_distance + 1):
        raw = elastic_sensitivity_at_distance(
            query, db, protected=protected, distance=k, plan=plan, tree=tree
        )
        value = math.exp(-beta * k) * raw
        if value > best_value:
            best_value, best_distance = value, k
        if previous is not None and value <= previous:
            decreasing_streak += 1
            if decreasing_streak >= patience:
                break
        else:
            decreasing_streak = 0
        previous = value
    return best_value, best_distance


def run_flex_dp(
    query: ConjunctiveQuery,
    db: Database,
    primary: str,
    epsilon: float,
    delta: float = 1e-6,
    tree: Optional[DecompositionTree] = None,
    rng: Optional[np.random.Generator] = None,
    clamp_nonnegative: bool = True,
) -> FlexDPOutcome:
    """Answer a counting query with Flex's smooth elastic sensitivity.

    Parameters
    ----------
    query, db, primary:
        The counting query, instance, and protected relation.
    epsilon, delta:
        The (ε, δ)-DP parameters; ``β = ε / (2 ln(2/δ))``.
    tree:
        Decomposition used for counting and the default join plan.
    """
    if not 0 < delta < 1:
        raise MechanismConfigError(f"delta must be in (0,1), got {delta}")
    if epsilon <= 0:
        raise MechanismConfigError(f"epsilon must be positive, got {epsilon}")
    if rng is None:
        rng = np.random.default_rng()
    beta = epsilon / (2.0 * math.log(2.0 / delta))
    plan = plan_from_tree(tree) if tree is not None else None
    smooth, peak = smooth_elastic_sensitivity(
        query, db, protected=primary, beta=beta, plan=plan, tree=tree
    )
    true_count = count_query(query, db, tree=tree)
    # Smooth-sensitivity Laplace: noise scale 2·S/ε.
    answer = laplace_mechanism(true_count, 2.0 * smooth, epsilon, rng)
    if clamp_nonnegative and answer < 0:
        answer = 0.0
    return FlexDPOutcome(
        answer=answer,
        smooth_sensitivity=smooth,
        beta=beta,
        peak_distance=peak,
        true_count=declassified(true_count, reason="debug field for experiments"),
        epsilon=epsilon,
        delta=delta,
    )
