"""Known-good for R005: multiplicity arithmetic via the checked helpers.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def scale(relation, factor):
    return _checked_scale(relation._mult, factor)


def combine(left_mult, right_mult):
    return _pair_products(left_mult, right_mult)


def totals(inverse, mult, n_groups):
    return _group_sums(inverse, mult, n_groups)


def unrelated(current, multiplicity):
    # Names outside the multiplicity vocabulary stay unflagged.
    return current + multiplicity
