"""Experiment E6 — Sec. 7.3 parameter analysis: the ℓ sweep for q★.

TSensDP takes a public upper bound ℓ on tuple sensitivity.  Privacy holds
for any ℓ; accuracy does not.  The paper sweeps
ℓ ∈ {1, 10, 30, 50, 100, 1000} on the star query (true local sensitivity
13 in their instance) and observes a sweet spot: too-small ℓ forces heavy
truncation (bias), too-large ℓ inflates the noise on the SVT estimate so
the learned threshold — and hence the final noise — drifts.

This module reruns that sweep on our q★ instance, reporting the median
learned threshold, relative bias and relative error over ``n_runs`` runs.
"""

from __future__ import annotations

import time
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.dp.truncation import TruncationOracle
from repro.dp.tsensdp import run_tsens_dp
from repro.experiments.reporting import format_table, median
from repro.experiments.runner import facebook_database
from repro.workloads.facebook_queries import star_workload
from repro.exceptions import MechanismConfigError

#: The paper's sweep {1, 10, 30, 50, 100, 1000} extended upward: our
#: synthetic q★ instance has a larger true local sensitivity than the
#: paper's (see EXPERIMENTS.md), so the over-estimate degradation the paper
#: observes at ℓ=1000 appears here at the two added points.
DEFAULT_BOUNDS = (1, 10, 30, 50, 100, 1000, 10_000, 100_000)
DEFAULT_RUNS = 20
DEFAULT_EPSILON = 1.0


def run(
    bounds: Sequence[int] = DEFAULT_BOUNDS,
    epsilon: float = DEFAULT_EPSILON,
    n_runs: int = DEFAULT_RUNS,
    seed: int = 0,
) -> List[Mapping[str, object]]:
    """Run the ℓ sweep; one row per bound."""
    workload = star_workload()
    db = workload.prepared(facebook_database(seed))
    if workload.primary is None:
        raise MechanismConfigError(
            f"workload {workload.name} declares no primary private relation"
        )
    oracle = TruncationOracle(
        query=workload.query, db=db, primary=workload.primary, tree=workload.tree
    )
    rng = np.random.default_rng(seed)
    rows: List[Mapping[str, object]] = []
    for ell in bounds:
        outcomes = []
        for _ in range(n_runs):
            outcomes.append(
                run_tsens_dp(
                    workload.query,
                    db,
                    primary=workload.primary,
                    epsilon=epsilon,
                    ell=ell,
                    tree=workload.tree,
                    oracle=oracle,
                    rng=rng,
                )
            )
        rows.append(
            {
                "ell": ell,
                "true_local_sensitivity": oracle.local_sensitivity,
                "median_tau": median(o.tau for o in outcomes),
                "median_rel_bias": median(o.relative_bias for o in outcomes),
                "median_rel_error": median(o.relative_error for o in outcomes),
            }
        )
    return rows


def report(rows: Sequence[Mapping[str, object]]) -> str:
    """Text rendering of the ℓ sweep."""
    return format_table(
        rows,
        columns=[
            "ell",
            "true_local_sensitivity",
            "median_tau",
            "median_rel_bias",
            "median_rel_error",
        ],
        title="Parameter analysis — ℓ sweep for q★ (TSensDP)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
