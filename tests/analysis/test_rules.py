"""Fixture-based self-tests for every repro-lint rule.

Each rule directory under ``fixtures/`` holds known-bad and known-good
snippets (classified by a ``bad``/``good`` prefix on the file name or an
enclosing directory).  Because several rules are path-scoped — R001 fires
only under a ``dp`` directory, R006 exempts test trees — the fixtures are
copied into a neutral temporary directory, preserving their relative
layout, before linting.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis import LintRunner, builtin_rules

FIXTURES = Path(__file__).parent / "fixtures"

RULE_IDS = ["R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008"]


def _rule(rule_id):
    return {rule.rule_id: rule for rule in builtin_rules()}[rule_id]


def _classify(relative: Path) -> str:
    for part in relative.parts:
        if part.startswith("bad"):
            return "bad"
        if part.startswith("good"):
            return "good"
    raise AssertionError(f"fixture {relative} has no bad/good marker")


def _copied_fixtures(rule_id, tmp_path):
    """Copy one rule's fixture tree to a neutral path; yield (kind, path)."""
    source_root = FIXTURES / rule_id
    pairs = []
    for source in sorted(source_root.rglob("*.py")):
        relative = source.relative_to(source_root)
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(source, target)
        pairs.append((_classify(relative), target))
    return pairs


class TestFixtureCoverage:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_rule_has_bad_and_good_fixture(self, rule_id):
        kinds = {_classify(p.relative_to(FIXTURES / rule_id))
                 for p in (FIXTURES / rule_id).rglob("*.py")}
        assert kinds == {"bad", "good"}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_flagged_good_clean(self, rule_id, tmp_path):
        runner = LintRunner([_rule(rule_id)])
        for kind, path in _copied_fixtures(rule_id, tmp_path):
            findings = runner.check_file(path)
            if kind == "bad":
                assert findings, f"{rule_id} missed known-bad fixture {path.name}"
                assert all(f.rule == rule_id for f in findings)
            else:
                assert not findings, (
                    f"{rule_id} false positive on {path.name}: {findings}"
                )


class TestRuleSpecifics:
    def test_r001_counts_each_leak(self, tmp_path):
        runner = LintRunner([_rule("R001")])
        for kind, path in _copied_fixtures("R001", tmp_path):
            if kind == "bad":
                # return leak + print leak + derived-value leak
                assert len(runner.check_file(path)) == 3

    def test_r003_reports_partial_invalidation(self, tmp_path):
        runner = LintRunner([_rule("R003")])
        for kind, path in _copied_fixtures("R003", tmp_path):
            if kind == "bad":
                messages = [f.message for f in runner.check_file(path)]
                assert len(messages) == 2
                assert any("only on some paths" in m for m in messages)

    def test_r006_scoped_out_of_test_trees(self):
        rule = _rule("R006")
        assert not rule.applies_to(Path("tests/analysis/test_rules.py"))
        assert rule.applies_to(Path("src/repro/query/gyo.py"))

    def test_r001_scoped_to_dp(self):
        rule = _rule("R001")
        assert rule.applies_to(Path("src/repro/dp/tsensdp.py"))
        assert not rule.applies_to(Path("src/repro/session.py"))

    def test_r003_scoped_to_session_module(self):
        rule = _rule("R003")
        assert rule.applies_to(Path("src/repro/session.py"))
        assert not rule.applies_to(Path("src/repro/evaluation/joinstate.py"))

    def test_r007_scoped_to_serve_minus_epochs(self):
        rule = _rule("R007")
        assert rule.applies_to(Path("src/repro/serve/server.py"))
        assert rule.applies_to(Path("src/repro/serve/admission.py"))
        assert not rule.applies_to(Path("src/repro/serve/epochs.py"))
        assert not rule.applies_to(Path("tests/serve/test_server.py"))
        assert not rule.applies_to(Path("src/repro/session.py"))

    def test_r008_scoped_to_engine_parallel(self):
        rule = _rule("R008")
        assert rule.applies_to(Path("src/repro/engine/parallel.py"))
        assert not rule.applies_to(Path("src/repro/engine/sharding.py"))
        assert not rule.applies_to(Path("src/repro/serve/parallel.py"))

    def test_r008_counts_each_materialisation(self, tmp_path):
        runner = LintRunner([_rule("R008")])
        for kind, path in _copied_fixtures("R008", tmp_path):
            messages = [f.message for f in runner.check_file(path)]
            if kind == "bad":
                # run_plan import_result + peek decode_relation +
                # peek _combine; the fetch body is sanctioned.
                assert len(messages) == 3
                assert all("worker-resident" in m for m in messages)
            else:
                assert not messages

    def test_r007_counts_each_bypass(self, tmp_path):
        runner = LintRunner([_rule("R007")])
        for kind, path in _copied_fixtures("R007", tmp_path):
            if kind == "bad":
                messages = [f.message for f in runner.check_file(path)]
                # evaluation import + JoinState name + _evaluator +
                # _ensure_evaluator + delta_batch + component_states
                assert len(messages) == 6
                assert any("epoch lease" in m for m in messages)


class TestSourceTreeContract:
    def test_src_passes_all_rules_with_empty_baseline(self):
        src = Path(__file__).resolve().parents[2] / "src"
        result = LintRunner(builtin_rules()).run([src])
        assert result.clean, "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}" for f in result.findings
        )

    def test_seeding_bad_fixture_into_src_fails(self, tmp_path):
        """The CI-gate property: any known-bad snippet inside a src-like
        tree produces findings (here: a dp/ leak and a bare assert)."""
        bad_dp = tmp_path / "repro" / "dp" / "leaky.py"
        bad_dp.parent.mkdir(parents=True)
        shutil.copyfile(FIXTURES / "R001" / "dp" / "bad_leak.py", bad_dp)
        shutil.copyfile(
            FIXTURES / "R006" / "bad_assert.py", tmp_path / "repro" / "asserty.py"
        )
        result = LintRunner(builtin_rules()).run([tmp_path])
        assert {f.rule for f in result.findings} == {"R001", "R006"}
