"""Plain-text report formatting for experiment outputs.

Every experiment module renders its rows through :func:`format_table` so
the harness prints the same kind of rows/series the paper's tables and
figures report, ready to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_value(value: object) -> str:
    """Human-friendly cell rendering: compact floats, thousands-grouped
    ints, pass-through strings."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned text table.

    Parameters
    ----------
    rows:
        The data; each row maps column name to value.
    columns:
        Column order (defaults to the first row's key order).
    title:
        Optional heading printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([format_value(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered[0]))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in rendered[1:]:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row_cells)))
    return "\n".join(lines)


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` guarding division by zero (returns inf)."""
    if denominator == 0:
        return float("inf")
    return numerator / denominator


def median(values: Iterable[float]) -> float:
    """Median without numpy (keeps experiment rows plain)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0
