"""Benchmark E6 — the ℓ parameter sweep for q★ (Sec. 7.3).

Times one TSensDP release per ℓ value (oracle shared), and asserts the
sweet-spot shape: the error at a paper-style moderate ℓ beats both the
over-truncating ℓ=1 and a grossly inflated ℓ.
"""

import numpy as np
import pytest

from repro.dp import run_tsens_dp
from repro.dp.truncation import TruncationOracle
from repro.experiments.reporting import median
from repro.workloads import star_workload

BOUNDS = (1, 100, 1000, 100_000)
_state = {}


def _oracle(db):
    if "oracle" not in _state:
        workload = star_workload()
        _state["oracle"] = TruncationOracle(
            workload.query, db, workload.primary, tree=workload.tree
        )
    return _state["oracle"]


@pytest.mark.parametrize("ell", BOUNDS)
def test_param_sweep_ell(benchmark, facebook_base, ell):
    workload = star_workload()
    db = workload.prepared(facebook_base)
    oracle = _oracle(db)
    rng = np.random.default_rng(3)

    def release():
        return run_tsens_dp(
            workload.query,
            db,
            primary=workload.primary,
            epsilon=1.0,
            ell=ell,
            tree=workload.tree,
            oracle=oracle,
            rng=rng,
        )

    outcome = benchmark.pedantic(release, rounds=3, iterations=1)
    errors = [release().relative_error for _ in range(10)]
    _state.setdefault("errors", {})[ell] = median(errors)
    benchmark.extra_info["median_rel_error"] = _state["errors"][ell]
    if len(_state["errors"]) == len(BOUNDS):
        errors_by_ell = _state["errors"]
        best = min(errors_by_ell.values())
        assert errors_by_ell[1] > best
        assert errors_by_ell[100_000] > best
