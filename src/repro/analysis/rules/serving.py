"""R007 — epoch-lease boundary: serve/ code reads through leases only.

The serving layer's consistency story rests on one funnel: every read of
maintained query state goes through an epoch lease
(:meth:`repro.serve.epochs.EpochManager.read`), so it is pinned to one
committed database version.  A handler that reaches directly into the
session's evaluator internals (``_evaluator``, ``component_states``,
``delta_batch``, :class:`JoinState`, ...) bypasses the pin and can
observe a half-folded batch or a post-swap state under an old lease.

This rule pins the funnel statically: inside any ``serve``
directory, direct maintained-state access — the session/evaluator
internals above, or any import from :mod:`repro.evaluation` — is a
violation everywhere except ``epochs.py``, the one module allowed to
own the boundary.  Test files are exempt (they legitimately poke
internals to set up scenarios).
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule

#: Session/evaluator internals that bypass the epoch pin.
BANNED_ATTRIBUTES = frozenset(
    {
        "_evaluator",
        "_ensure_evaluator",
        "_states",
        "_path_state",
        "component_states",
        "apply_batch",
        "delta_batch",
    }
)

#: Maintained-state classes serve/ handlers must never touch directly.
BANNED_NAMES = frozenset({"JoinState", "IncrementalEvaluator"})

#: Module prefix whose import marks a boundary violation.
BANNED_IMPORT_PREFIX = "repro.evaluation"

#: The one serve/ module allowed to own the lease boundary.
EXEMPT_FILES = frozenset({"epochs.py"})


class EpochLeaseBoundaryRule(Rule):
    rule_id = "R007"
    title = "epoch-lease boundary: serve/ touches maintained state directly"
    rationale = (
        "Serving handlers that bypass epoch leases can observe half-folded "
        "update batches or post-swap state; all maintained-state access "
        "belongs behind EpochManager.read in epochs.py."
    )

    def applies_to(self, path: PurePath) -> bool:
        if "serve" not in path.parts:
            return False
        if path.name in EXEMPT_FILES or path.name.startswith("test_"):
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if node.attr in BANNED_ATTRIBUTES:
                    yield ctx.finding(
                        self,
                        node,
                        f"direct maintained-state access .{node.attr}; go "
                        "through an epoch lease (EpochManager.read) — only "
                        "epochs.py may touch session internals",
                    )
                elif node.attr in BANNED_NAMES:
                    yield self._banned_name(ctx, node, node.attr)
            elif isinstance(node, ast.Name) and node.id in BANNED_NAMES:
                yield self._banned_name(ctx, node, node.id)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == BANNED_IMPORT_PREFIX or module.startswith(
                    BANNED_IMPORT_PREFIX + "."
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"serve/ must not import from {module}; maintained "
                        "state is reached through epoch leases only",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == BANNED_IMPORT_PREFIX or alias.name.startswith(
                        BANNED_IMPORT_PREFIX + "."
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"serve/ must not import {alias.name}; maintained "
                            "state is reached through epoch leases only",
                        )

    def _banned_name(self, ctx: FileContext, node: ast.AST, name: str) -> Finding:
        return ctx.finding(
            self,
            node,
            f"serve/ must not use {name} directly; wrap the access in "
            "epochs.py behind an epoch lease",
        )
