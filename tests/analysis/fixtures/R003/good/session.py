"""Known-good for R003: every mutation routes through the helper.

Fixture only — parsed by the analyzer, never imported or executed.
"""


class PreparedQuery:
    def __init__(self, db):
        self._db = db
        self._results = {}

    def apply(self, update):
        self._db = self._apply_update(self._db, update)
        self._invalidate_caches()
        return self._db

    def count(self):
        return self._count(self._db)  # read-only: no invalidation needed

    def _invalidate_caches(self):
        self._results.clear()
