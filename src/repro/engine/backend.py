"""Execution-backend registry: pluggable physical representations.

The algorithmic layers (Yannakakis evaluation, TSens, the DP mechanisms)
are written against the *logical* relation interface — schema, counts,
bag operators.  This module names the physical implementations of that
interface and converts between them:

* ``"python"`` — :class:`~repro.engine.relation.Relation`, a dict from
  value tuple to multiplicity.  Arbitrary-precision counts, friendliest
  for debugging, the correctness reference.
* ``"columnar"`` — :class:`~repro.engine.columnar.ColumnarRelation`,
  dictionary-encoded numpy code columns plus an ``int64`` multiplicity
  column, with vectorized join/group-by/semijoin kernels.

Everything that materialises data (:mod:`repro.engine.io`, the dataset
generators, the CLI, the benchmarks) accepts a ``backend=`` knob and
resolves it here; everything that transforms data dispatches on the
relation type in :mod:`repro.engine.operators`, so the two families never
need to know about each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.engine.columnar import ColumnarRelation
from repro.engine.relation import Relation
from repro.exceptions import MechanismConfigError

#: Relation-like: either backend's relation class.
AnyRelation = object


@dataclass(frozen=True)
class Backend:
    """One physical execution backend.

    Attributes
    ----------
    name:
        Registry key (``"python"`` or ``"columnar"``).
    relation_cls:
        The relation class; its constructor takes ``(schema, rows)`` like
        :class:`~repro.engine.relation.Relation`.
    description:
        One-line summary for ``--help`` texts and reports.
    """

    name: str
    relation_cls: type
    description: str

    def relation(self, schema, rows=None):
        """Construct a relation of this backend."""
        return self.relation_cls(schema, rows)

    def convert(self, relation):
        """Re-materialise ``relation`` under this backend (identity when it
        already is one)."""
        if isinstance(relation, self.relation_cls):
            return relation
        return self.relation_cls(relation.schema, relation.counts)


PYTHON_BACKEND = Backend(
    name="python",
    relation_cls=Relation,
    description="dict-of-counts rows; arbitrary-precision, per-tuple ops",
)
COLUMNAR_BACKEND = Backend(
    name="columnar",
    relation_cls=ColumnarRelation,
    description="dictionary-encoded numpy columns; vectorized ops",
)

BACKENDS: Dict[str, Backend] = {
    PYTHON_BACKEND.name: PYTHON_BACKEND,
    COLUMNAR_BACKEND.name: COLUMNAR_BACKEND,
}

#: Valid ``backend=`` values, in registration order (for argparse choices).
BACKEND_NAMES: Tuple[str, ...] = tuple(BACKENDS)

DEFAULT_BACKEND = PYTHON_BACKEND.name


def register_backend(backend: Backend) -> None:
    """Add a third-party backend to the registry (name must be fresh)."""
    if backend.name in BACKENDS:
        raise MechanismConfigError(f"backend {backend.name!r} already registered")
    BACKENDS[backend.name] = backend


def get_backend(name: str) -> Backend:
    """Resolve a backend by name; raises on unknown names."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise MechanismConfigError(
            f"unknown backend {name!r} (known: {known})"
        ) from None


def backend_of(relation) -> str:
    """Name of the backend a relation belongs to."""
    for backend in BACKENDS.values():
        if isinstance(relation, backend.relation_cls):
            return backend.name
    raise MechanismConfigError(f"object {type(relation).__name__} is no known backend relation")


def to_backend(relation, backend) -> AnyRelation:
    """Convert ``relation`` to ``backend`` (a name or a :class:`Backend`)."""
    if isinstance(backend, str):
        backend = get_backend(backend)
    return backend.convert(relation)
