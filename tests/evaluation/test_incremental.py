"""Unit tests for the incremental delta re-evaluator."""

import pytest

from repro.engine import Database, Relation
from repro.engine.columnar import ColumnarRelation
from repro.evaluation import IncrementalEvaluator, PROBE_ATTRIBUTE, count_query
from repro.core import naive_tuple_sensitivity
from repro.query import parse_predicate, parse_query
from repro.query.jointree import join_tree_from_parents
from repro.exceptions import (
    MultiplicityOverflowError,
    SchemaError,
    UnknownRelationError,
)

BACKENDS = ("python", "columnar")


@pytest.mark.parametrize("backend", BACKENDS)
class TestAgainstFullReevaluation:
    def test_base_count_matches(self, fig1_query, fig1_db, backend):
        db = fig1_db.with_backend(backend)
        evaluator = IncrementalEvaluator(fig1_query, db)
        assert evaluator.base_count == count_query(fig1_query, db)

    def test_deltas_match_per_tuple_reruns(self, fig1_query, fig1_db, backend):
        db = fig1_db.with_backend(backend)
        evaluator = IncrementalEvaluator(fig1_query, db)
        for relation in fig1_query.relation_names:
            for row in db.relation(relation):
                expected = naive_tuple_sensitivity(fig1_query, db, relation, row)
                assert evaluator.delta(relation, row) == expected
                assert evaluator.count_after_insert(relation, row) == count_query(
                    fig1_query, db.add_tuple(relation, row)
                )
                assert evaluator.count_after_delete(relation, row) == count_query(
                    fig1_query, db.remove_tuple(relation, row)
                )

    def test_batch_matches_single_probes(self, fig3_query, fig3_db, backend):
        db = fig3_db.with_backend(backend)
        evaluator = IncrementalEvaluator(fig3_query, db)
        for relation in fig3_query.relation_names:
            rows = list(db.relation(relation)) + [("zz", "zz")]
            batch = evaluator.delta_batch(relation, rows)
            assert batch == [evaluator.delta(relation, row) for row in rows]

    def test_duplicate_row_deletes_one_occurrence(self, fig3_query, fig3_db, backend):
        # Fig. 3's R1 holds ("a2", "b2") twice; the probe must account for
        # removing a single occurrence, not the whole group.
        db = fig3_db.with_backend(backend)
        evaluator = IncrementalEvaluator(fig3_query, db)
        expected = evaluator.base_count - count_query(
            fig3_query, db.remove_tuple("R1", ("a2", "b2"))
        )
        assert evaluator.delta("R1", ("a2", "b2")) == expected

    def test_ghd_triangle(self, triangle_query, triangle_db, backend):
        db = triangle_db.with_backend(backend)
        evaluator = IncrementalEvaluator(triangle_query, db)
        assert evaluator.base_count == count_query(triangle_query, db)
        for relation in triangle_query.relation_names:
            for row in db.relation(relation):
                expected = naive_tuple_sensitivity(
                    triangle_query, db, relation, row
                )
                assert evaluator.delta(relation, row) == expected

    def test_disconnected_components_multiply(self, backend):
        query = parse_query("Q(A,B) :- R(A), S(B)")
        db = Database(
            {
                "R": Relation(["A"], [(1,), (1,), (2,)]),
                "S": Relation(["B"], [(7,), (8,)]),
            },
            backend=backend,
        )
        evaluator = IncrementalEvaluator(query, db)
        assert evaluator.base_count == 6
        # Inserting into R adds |S| join results, and vice versa.
        assert evaluator.delta("R", (9,)) == 2
        assert evaluator.delta("S", (9,)) == 3
        assert evaluator.count_after_delete("R", (1,)) == 4


@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeCases:
    def test_empty_relation(self, backend):
        query = parse_query("Q(A,B) :- R(A), S(A,B)")
        db = Database(
            {
                "R": Relation(["A"], []),
                "S": Relation(["A", "B"], [(1, 2), (1, 3)]),
            },
            backend=backend,
        )
        evaluator = IncrementalEvaluator(query, db)
        assert evaluator.base_count == 0
        assert evaluator.delta("R", (1,)) == 2
        assert evaluator.delta("R", (9,)) == 0
        assert evaluator.delta_batch("S", [(1, 2)]) == [0]

    def test_zero_count_deltas(self, fig1_query, fig1_db, backend):
        db = fig1_db.with_backend(backend)
        evaluator = IncrementalEvaluator(fig1_query, db)
        # A tuple joining nothing contributes nothing.
        assert evaluator.delta("R3", ("zz", "zz")) == 0
        # Deleting an absent tuple is a no-op.
        assert evaluator.count_after_delete("R3", ("zz", "zz")) == (
            evaluator.base_count
        )

    def test_selection_blocks_probe(self, backend):
        query = parse_query("Q(A,B) :- R(A), S(A,B)").with_selection(
            "R", parse_predicate("A != 1")
        )
        db = Database(
            {
                "R": Relation(["A"], [(1,), (2,)]),
                "S": Relation(["A", "B"], [(1, 2), (2, 3)]),
            },
            backend=backend,
        )
        evaluator = IncrementalEvaluator(query, db)
        assert evaluator.base_count == 1
        assert evaluator.delta("R", (1,)) == 0  # filtered out -> no effect
        assert evaluator.delta("R", (2,)) == 1

    def test_empty_batch(self, fig1_query, fig1_db, backend):
        db = fig1_db.with_backend(backend)
        evaluator = IncrementalEvaluator(fig1_query, db)
        assert evaluator.delta_batch("R1", []) == []

    def test_unknown_relation(self, fig1_query, fig1_db, backend):
        evaluator = IncrementalEvaluator(
            fig1_query, fig1_db.with_backend(backend)
        )
        with pytest.raises(UnknownRelationError):
            evaluator.delta("nope", (1, 2, 3))

    def test_probe_arity_mismatch(self, fig1_query, fig1_db, backend):
        evaluator = IncrementalEvaluator(
            fig1_query, fig1_db.with_backend(backend)
        )
        with pytest.raises(SchemaError):
            evaluator.delta("R1", ("a1",))

    def test_reserved_probe_variable_rejected(self, backend):
        from repro.query.atoms import Atom
        from repro.query.conjunctive import ConjunctiveQuery

        query = ConjunctiveQuery([Atom("R", ("A", PROBE_ATTRIBUTE))])
        db = Database(
            {"R": Relation(["A", "B"], [(1, 2)])}, backend=backend
        )
        with pytest.raises(SchemaError):
            IncrementalEvaluator(query, db)


class TestOverflowPropagation:
    def test_columnar_probe_overflow_raises(self):
        # Star tree rooted at the empty R: the base structure builds fine
        # (every botjoin fits int64, the root join is empty), but a probe
        # into R multiplies the two 2^62 child botjoins and must surface
        # the columnar overflow rather than wrap.
        query = parse_query("Q(A) :- R(A), S1(A), S2(A)")
        huge = 2**62
        db = Database(
            {
                "R": ColumnarRelation(["A"], {}),
                "S1": ColumnarRelation(["A"], {("x",): huge}),
                "S2": ColumnarRelation(["A"], {("x",): huge}),
            }
        )
        tree = join_tree_from_parents(query, "R", {"S1": "R", "S2": "R"})
        evaluator = IncrementalEvaluator(query, db, tree=tree)
        assert evaluator.base_count == 0
        with pytest.raises(MultiplicityOverflowError):
            evaluator.delta("R", ("x",))

    def test_failed_apply_commits_nothing(self):
        # An applied update that overflows int64 mid-propagation must not
        # leave the evaluator half-mutated: the db snapshot, the cached
        # count and every later update stay coherent.
        query = parse_query("Q(A) :- R(A), S(A)")
        big = 4 * 10**18
        db = Database(
            {
                "R": ColumnarRelation(["A"], {("x",): big}),
                "S": ColumnarRelation(["A"], {("x",): 2}),
            }
        )
        evaluator = IncrementalEvaluator(query, db)
        assert evaluator.base_count == 2 * big
        with pytest.raises(MultiplicityOverflowError):
            evaluator.apply_insert("S", ("x",))
        assert evaluator.db.relation("S").multiplicity(("x",)) == 2
        assert evaluator.base_count == 2 * big
        # The evaluator is still fully usable after the failed commit.
        assert evaluator.apply_delete("S", ("x",)) == big
        assert evaluator.base_count == count_query(query, evaluator.db)

    def test_python_backend_is_arbitrary_precision(self):
        query = parse_query("Q(A) :- R(A), S1(A), S2(A)")
        huge = 2**62
        db = Database(
            {
                "R": Relation(["A"], {}),
                "S1": Relation(["A"], {("x",): huge}),
                "S2": Relation(["A"], {("x",): huge}),
            }
        )
        tree = join_tree_from_parents(query, "R", {"S1": "R", "S2": "R"})
        evaluator = IncrementalEvaluator(query, db, tree=tree)
        assert evaluator.delta("R", ("x",)) == huge * huge


class TestCompaction:
    """compact_updates: delta-log-with-compaction semantics."""

    @staticmethod
    def _db(counts, backend="python"):
        return Database({"R": Relation(["A", "B"], counts)}, backend=backend)

    def test_duplicate_inserts_coalesce(self):
        from repro.evaluation.incremental import compact_updates

        db = self._db({})
        deltas = compact_updates(
            db, [(True, "R", (1, 2)), (True, "R", (1, 2)), (True, "R", (3, 4))]
        )
        assert len(deltas) == 1
        assert deltas[0].plus == {(1, 2): 2, (3, 4): 1}
        assert deltas[0].minus == {}

    def test_insert_then_delete_cancels(self):
        from repro.evaluation.incremental import compact_updates

        db = self._db({})
        deltas = compact_updates(
            db, [(True, "R", (1, 2)), (False, "R", (1, 2))]
        )
        assert deltas == []

    def test_delete_clamps_against_pre_batch_multiplicity(self):
        from repro.evaluation.incremental import compact_updates

        db = self._db({(1, 2): 1})
        # Two deletes of a singleton: the second is a clamped no-op, so
        # the net minus is 1 — never 2.
        deltas = compact_updates(
            db, [(False, "R", (1, 2)), (False, "R", (1, 2))]
        )
        assert deltas[0].minus == {(1, 2): 1}
        # Absent-row deletes compact to nothing at all.
        assert compact_updates(db, [(False, "R", (9, 9))]) == []

    def test_delete_insert_reorder_respects_clamping(self):
        from repro.evaluation.incremental import compact_updates

        db = self._db({})
        # delete-then-insert on an absent row: the delete clamps first,
        # so the net is +1 (NOT a cancellation — order inside a relation
        # matters exactly as much as sequential replay says it does).
        deltas = compact_updates(
            db, [(False, "R", (1, 2)), (True, "R", (1, 2))]
        )
        assert deltas[0].plus == {(1, 2): 1}
        assert deltas[0].minus == {}

    def test_mixed_net_signs_split_per_tuple(self):
        from repro.evaluation.incremental import compact_updates

        db = self._db({(1, 2): 3, (3, 4): 1})
        deltas = compact_updates(
            db,
            [
                (False, "R", (1, 2)),
                (False, "R", (1, 2)),
                (True, "R", (5, 6)),
                (False, "R", (3, 4)),
            ],
        )
        assert deltas[0].plus == {(5, 6): 1}
        assert deltas[0].minus == {(1, 2): 2, (3, 4): 1}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_over_delete_delta_rejected(self, fig1_query, fig1_db, backend):
        """apply_batch trusts compacted deltas; a hand-built delta that
        deletes more copies than exist is rejected before any commit."""
        from repro.evaluation.joinstate import RelationDelta
        from repro.exceptions import SessionError

        db = fig1_db.with_backend(backend)
        evaluator = IncrementalEvaluator(fig1_query, db)
        before = evaluator.base_count
        bogus = RelationDelta("R1", {}, {("a1", "b1", "c1"): 99})
        with pytest.raises(SessionError):
            evaluator.apply_batch([bogus])
        assert evaluator.base_count == before
        assert evaluator.db.relation("R1").multiplicity(("a1", "b1", "c1")) == 1


class TestBulkMultiplicities:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_single_lookups(self, fig1_db, backend):
        relation = fig1_db.with_backend(backend).relation("R1")
        rows = list(relation) + [("zz", "zz", "zz")]
        assert relation.multiplicities(rows) == [
            relation.multiplicity(row) for row in rows
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_arity_checked(self, fig1_db, backend):
        relation = fig1_db.with_backend(backend).relation("R1")
        with pytest.raises(SchemaError):
            relation.multiplicities([("a1",)])
