"""Top-k frequency approximation of TSens (Sec. 5.4 "Efficient approximations").

The exact algorithm's topjoins and botjoins can grow quadratically for some
queries (the paper hits this on cyclic q3).  The approximation keeps, in
every topjoin/botjoin, only the ``k`` largest frequencies exactly and clamps
every other entry **up** to the k-th largest frequency.  Each clamped count
dominates the true count, and counts propagate through ``r̃join``/``γ`` by
products and sums of non-negative numbers, so every downstream multiplicity
is an over-estimate: the result is a valid **upper bound** on each tuple
sensitivity and on the local sensitivity, trading tightness for bounded
frequency skew in the intermediates.

``tsens_topk`` monkey-patches nothing: it wraps the bound tree's botjoin /
topjoin passes with a clamping step, reusing the exact multiplicity-table
construction from :mod:`repro.core.acyclic`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.engine.columnar import ColumnarRelation, clamp_counts_to_top_k
from repro.engine.database import Database
from repro.engine.operators import group_by, join_all
from repro.engine.relation import Relation
from repro.evaluation.joinstate import JoinState
from repro.evaluation.yannakakis import bind
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.gyo import gyo_join_tree
from repro.query.jointree import DecompositionTree
from repro.core.acyclic import (
    best_witness,
    multiplicity_table,
    select_overall_witness,
)
from repro.core.result import SensitiveTuple, SensitivityResult
from repro.exceptions import InternalError, MechanismConfigError, QueryStructureError


def clamp_to_top_k(relation: Relation, k: int) -> Relation:
    """Clamp all but the ``k`` largest counts up to the k-th largest.

    Entries keep their keys; only counts below the k-th largest rise to it.
    With ``k >= distinct_count`` the relation is returned unchanged.
    Columnar relations take a vectorized path (``np.partition`` +
    ``np.maximum``) and stay columnar.
    """
    if k <= 0:
        raise MechanismConfigError(f"top-k clamp needs k >= 1, got {k}")
    if relation.distinct_count() <= k:
        return relation
    if isinstance(relation, ColumnarRelation):
        return clamp_counts_to_top_k(relation, k)
    counts = sorted(relation.counts.values(), reverse=True)
    threshold = counts[k - 1]
    clamped = {
        row: (cnt if cnt >= threshold else threshold)
        for row, cnt in relation.items()
    }
    return type(relation)._from_counts(relation.schema, clamped)


def tsens_topk(
    query: ConjunctiveQuery,
    db: Database,
    k: int,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Iterable[str] = (),
    state: Optional[JoinState] = None,
) -> SensitivityResult:
    """Upper-bound TSens with per-pass top-k clamping (connected queries).

    Identical to :func:`repro.core.acyclic.tsens_connected` except that each
    botjoin and topjoin is clamped with :func:`clamp_to_top_k` before use.
    The returned local sensitivity satisfies
    ``LS(Q, D) <= result.local_sensitivity`` (tested property), with
    equality for ``k`` at least the number of distinct boundary values.

    ``state`` (a maintained :class:`JoinState` on ``tree`` over ``db``)
    supplies the bound tree so sessions skip re-binding after updates.
    Clamping is *not* linear, so the clamped botjoin/topjoin passes cannot
    be folded incrementally — they rerun per call over the maintained
    node relations, with clamping applied at every level exactly as the
    one-shot computation does.
    """
    if not query.is_connected():
        raise QueryStructureError("tsens_topk needs a connected query")
    if state is not None:
        bound = state.bound
        tree = state.tree
    else:
        if tree is None:
            tree = gyo_join_tree(query)
        bound = bind(query, tree, db)

    # Botjoins with clamping (post-order).
    botjoins: Dict[str, Relation] = {}
    for node_id in tree.post_order():
        current = bound.relation(node_id)
        for child in tree.children(node_id):
            current = join_all([current, botjoins[child]])
        group_attrs = sorted(tree.shared_with_parent(node_id))
        botjoins[node_id] = clamp_to_top_k(group_by(current, group_attrs), k)

    # Topjoins with clamping (pre-order).
    topjoins: Dict[str, Optional[Relation]] = {tree.root: None}
    for node_id in tree.pre_order():
        if node_id == tree.root:
            continue
        parent = tree.parent(node_id)
        if parent is None:
            raise InternalError(f"non-root node {node_id} has no parent")
        parts: List[Relation] = [bound.relation(parent)]
        if topjoins[parent] is not None:
            parts.append(topjoins[parent])  # type: ignore[arg-type]
        for sibling in tree.neighbours(node_id):
            parts.append(botjoins[sibling])
        joined = join_all(parts)
        group_attrs = sorted(tree.shared_with_parent(node_id))
        topjoins[node_id] = clamp_to_top_k(group_by(joined, group_attrs), k)

    skip = set(skip_relations)
    per_relation: Dict[str, SensitiveTuple] = {}
    tables = {}
    for relation in query.relation_names:
        if relation in skip:
            per_relation[relation] = SensitiveTuple(relation, {}, 1)
            continue
        table = multiplicity_table(bound, botjoins, topjoins, relation)
        tables[relation] = table
        per_relation[relation] = best_witness(table, query, db, relation)

    local, witness = select_overall_witness(per_relation)
    return SensitivityResult(
        query_name=query.name,
        method=f"tsens-top{k}",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables=tables,
    )
