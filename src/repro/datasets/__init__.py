"""Dataset generators: TPC-H, Facebook ego-networks, and random instances."""

from repro.datasets.facebook import (
    generate_ego_network,
    graph_statistics,
    triangle_table,
)
from repro.datasets.random_db import (
    random_acyclic_query,
    random_database,
    random_path_query,
    random_update_stream,
)
from repro.datasets.tpch import generate_tpch, table_sizes

__all__ = [
    "generate_ego_network",
    "generate_tpch",
    "graph_statistics",
    "random_acyclic_query",
    "random_database",
    "random_path_query",
    "random_update_stream",
    "table_sizes",
    "triangle_table",
]
