"""Benchmark E4 — Table 1: Facebook queries, sensitivity and runtime.

Times the TSens pass per Facebook query and records TSens vs Elastic
sensitivities; asserts the table's claim that TSens is tighter on every
query (×3 up to ×80k in the paper).
"""

import pytest

from repro.baselines import elastic_sensitivity, plan_from_tree
from repro.core import local_sensitivity
from repro.query import auto_decompose
from repro.workloads import facebook_workloads

WORKLOADS = {w.name: w for w in facebook_workloads()}


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_table1_query(benchmark, facebook_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(facebook_base)
    tree = workload.tree or auto_decompose(workload.query)

    result = benchmark.pedantic(
        lambda: local_sensitivity(workload.query, db, tree=workload.tree),
        rounds=2,
        iterations=1,
    )
    elastic = elastic_sensitivity(workload.query, db, plan=plan_from_tree(tree))
    benchmark.extra_info["tsens_ls"] = result.local_sensitivity
    benchmark.extra_info["elastic_ls"] = elastic
    assert 0 < result.local_sensitivity <= elastic
