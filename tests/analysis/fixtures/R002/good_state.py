"""Known-good for R002: staged writes, committed only in commit methods.

Fixture only — parsed by the analyzer, never imported or executed.
"""


class JoinState:
    def __init__(self, bound):
        self.bound = bound
        self.botjoins = {}
        self._topjoins = None
        self._tables = {}

    def apply_update(self, relation, row, insert):
        self._staged_botjoins = {relation: self._stage(relation, row, insert)}
        self._commit()

    def _commit(self):
        for key, value in self._staged_botjoins.items():
            self.botjoins[key] = value


class IncrementalEvaluator:
    def apply_insert(self, relation, row):
        staged_db = self._db.with_relation(relation, row)
        self._commit_totals(staged_db)
        return self._base_count

    def _commit_totals(self, new_db):
        self._db = new_db
        self._base_count = self._count(new_db)
