"""Incremental == full re-evaluation == naive, on random instances.

Hypothesis drives random acyclic, path and cyclic queries plus random
databases through the re-evaluation baseline in both probe modes and
through the naive Theorem 3.1 search, on both execution backends, and
demands identical ``SensitivityResult``s.  This is the contract that lets
``baselines/reeval.py`` default to the incremental engine (and the bench
run it unsampled) without weakening the baseline's role as a correctness
cross-check.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import reevaluation_sensitivity
from repro.core import naive_local_sensitivity
from repro.datasets import random_acyclic_query, random_database, random_path_query
from repro.evaluation import IncrementalEvaluator, count_query
from repro.query import parse_predicate, parse_query

seeds = st.integers(min_value=0, max_value=10_000)

BACKENDS = ("python", "columnar")


def _assert_same_result(incremental, full, query):
    assert incremental.local_sensitivity == full.local_sensitivity
    for relation in query.relation_names:
        a, b = incremental.per_relation[relation], full.per_relation[relation]
        assert a.sensitivity == b.sensitivity
        assert dict(a.assignment) == dict(b.assignment)
    if full.witness is None:
        assert incremental.witness is None
    else:
        assert incremental.witness is not None
        assert incremental.witness.sensitivity == full.witness.sensitivity


@pytest.mark.parametrize("backend", BACKENDS)
class TestExactEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_acyclic_matches_full_and_naive(self, backend, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng, backend=backend)
        incremental = reevaluation_sensitivity(query, db, mode="incremental")
        full = reevaluation_sensitivity(query, db, mode="full")
        naive = naive_local_sensitivity(query, db)
        _assert_same_result(incremental, full, query)
        assert incremental.local_sensitivity == naive.local_sensitivity

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_path_queries_match(self, backend, seed, length):
        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=length)
        db = random_database(query, rng, backend=backend)
        _assert_same_result(
            reevaluation_sensitivity(query, db, mode="incremental"),
            reevaluation_sensitivity(query, db, mode="full"),
            query,
        )

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_cyclic_ghd_matches(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(
            query, rng, domain_size=3, max_rows=5, backend=backend
        )
        incremental = reevaluation_sensitivity(query, db, mode="incremental")
        full = reevaluation_sensitivity(query, db, mode="full")
        naive = naive_local_sensitivity(query, db)
        _assert_same_result(incremental, full, query)
        assert incremental.local_sensitivity == naive.local_sensitivity

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_selections_match(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        target = query.relation_names[int(rng.integers(0, 3))]
        pivot = int(rng.integers(0, 3))
        first_var = query.atom(target).variables[0]
        # A DSL predicate, so the columnar run exercises the
        # dictionary-level selection fast path end to end.
        filtered = query.with_selection(
            target, parse_predicate(f"{first_var} != {pivot}")
        )
        db = random_database(query, rng, backend=backend)
        incremental = reevaluation_sensitivity(filtered, db, mode="incremental")
        full = reevaluation_sensitivity(filtered, db, mode="full")
        naive = naive_local_sensitivity(filtered, db)
        _assert_same_result(incremental, full, filtered)
        assert incremental.local_sensitivity == naive.local_sensitivity


@pytest.mark.parametrize("backend", BACKENDS)
class TestProbeLevelEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_every_delta_matches_a_full_rerun(self, backend, seed, num_atoms):
        """Not just the argmax: every probed delta must equal a re-run."""
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng, backend=backend)
        evaluator = IncrementalEvaluator(query, db)
        base = count_query(query, db)
        assert evaluator.base_count == base
        for relation in query.relation_names:
            rows = list(db.relation(relation))[:4]
            arity = query.atom(relation).arity
            rows.append(tuple(-1 for _ in range(arity)))  # never joins
            for row, delta in zip(rows, evaluator.delta_batch(relation, rows)):
                assert delta == (
                    count_query(query, db.add_tuple(relation, row)) - base
                )

    @given(seeds, st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_sampled_modes_draw_identical_probes(self, backend, seed, sample_seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng, backend=backend)
        incremental = reevaluation_sensitivity(
            query, db, max_probes_per_relation=3, seed=sample_seed
        )
        full = reevaluation_sensitivity(
            query, db, max_probes_per_relation=3, seed=sample_seed, mode="full"
        )
        _assert_same_result(incremental, full, query)
