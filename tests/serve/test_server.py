"""End-to-end tests: asyncio server + blocking client over a real socket."""

import threading

import pytest

from repro.engine import Database, Relation
from repro.exceptions import (
    PrivacyBudgetError,
    ProtocolError,
    ServeError,
    TenantError,
    UnknownRelationError,
)
from repro.query import parse_query
from repro.serve import ServeClient, SessionServer, serve
from repro.session import prepare

BACKENDS = ("python", "columnar")


def _session(backend="python"):
    query = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    db = Database(
        {
            "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
            "S": Relation(["B", "C"], [(2, 4)]),
        },
        backend=backend,
    )
    return prepare(query, db)


@pytest.fixture()
def server():
    session = _session()
    server = SessionServer(session, default_epsilon=10.0).start_background()
    yield server
    server.stop()
    session.close()


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port, tenant="alice") as client:
        yield client


@pytest.mark.parametrize("backend", BACKENDS)
class TestCoreFlowBothBackends:
    def test_read_update_read(self, backend):
        session = _session(backend)
        with SessionServer(session, default_epsilon=5.0) as server:
            with ServeClient(server.host, server.port, tenant="t0") as client:
                assert client.count() == 2
                assert client.last_epoch == 0
                assert client.probe("S", [(2, 9), (7, 7)]) == [2, 0]
                sens = client.sensitivity()
                assert sens["local_sensitivity"] == 2
                assert sens["witness"]["relation"] in ("R", "S")
                assert client.insert("R", (5, 2)) == 3
                assert client.last_epoch == 1
                assert client.count() == 3
                outcome = client.release(
                    0.5, mechanism="tsensdp", primary="R", ell=10
                )
                assert outcome["mechanism_outcome"] == "TSensDPOutcome"
                assert outcome["true_count"] == 3
        session.close()


class TestEndpoints:
    def test_top_k_and_explain(self, client):
        topk = client.top_k(2)
        assert topk["method"].startswith("tsens-top")
        explain = client.explain()
        assert explain["local_sensitivity"] == 2
        assert explain["nodes"]  # node profiles serialised

    def test_epoch_endpoint_tracks_applies(self, client):
        assert client.epoch()["epoch"] == 0
        client.apply([("insert", "S", (2, 5)), ("delete", "S", (2, 4))])
        info = client.epoch()
        assert info["epoch"] == 1
        assert info["updates_applied"] == 2

    def test_stats_endpoint_shape(self, client):
        client.count()
        client.probe("S", [(2, 0)])
        stats = client.stats()
        assert stats["protocol"] == 1
        assert stats["requests_served"] >= 2
        assert stats["session"]["backend"] == "python"
        assert stats["session"]["relation_cardinalities"] == {"R": 2, "S": 1}
        assert stats["epochs"]["head_epoch"] == 0
        assert stats["admission"]["probe_requests"] >= 1

    def test_batch_is_atomic_over_the_wire(self, client):
        with pytest.raises(UnknownRelationError):
            client.apply(
                [("insert", "R", (9, 2)), ("insert", "Nope", (1,))]
            )
        assert client.count() == 2  # valid prefix rolled back too
        assert client.epoch()["epoch"] == 0


class TestErrors:
    def test_unknown_op_is_protocol_error(self, client):
        with pytest.raises(ProtocolError):
            client.call("drop_tables")

    def test_malformed_params(self, client):
        with pytest.raises(ProtocolError):
            client.call("probe", relation="S")  # rows missing
        with pytest.raises(ProtocolError):
            client.call("top_k", k=0)
        with pytest.raises(ProtocolError):
            client.call("release", tenant="alice")  # epsilon missing

    def test_unknown_relation_raises_client_side(self, client):
        with pytest.raises(UnknownRelationError):
            client.probe("Nope", [(1, 1)])

    def test_release_without_tenant(self, server):
        with ServeClient(server.host, server.port) as anonymous:
            with pytest.raises(ServeError):
                anonymous.release(0.5, mechanism="tsensdp", primary="R", ell=5)
            with pytest.raises(TenantError):
                anonymous.call(
                    "release", epsilon=0.5, tenant="", mechanism="tsensdp",
                    primary="R", ell=5,
                )

    def test_server_survives_bad_requests(self, client):
        for _ in range(3):
            with pytest.raises(ProtocolError):
                client.call("drop_tables")
        assert client.count() == 2


class TestTenants:
    def test_budget_isolation_over_the_wire(self):
        session = _session()
        server = serve(
            session, tenant_budgets={"alice": 1.0, "bob": 1.0}
        ).start_background()
        try:
            with ServeClient(server.host, server.port) as client:
                kwargs = dict(mechanism="tsensdp", primary="R", ell=10)
                client.release(1.0, tenant="alice", **kwargs)
                with pytest.raises(PrivacyBudgetError):
                    client.release(0.1, tenant="alice", **kwargs)
                # Bob is unaffected by Alice's exhaustion.
                client.release(0.5, tenant="bob", **kwargs)
                tenants = {
                    t["tenant_id"]: t for t in client.stats()["tenants"]
                }
                assert tenants["alice"]["remaining_epsilon"] == pytest.approx(0.0)
                assert tenants["bob"]["remaining_epsilon"] == pytest.approx(0.5)
                # Strict registry: unknown tenants are rejected.
                with pytest.raises(TenantError):
                    client.release(0.1, tenant="mallory", **kwargs)
        finally:
            server.stop()
            session.close()


class TestConcurrency:
    def test_concurrent_clients_get_epoch_consistent_answers(self, server):
        n_clients, n_rounds = 4, 5
        observations = []
        errors = []

        def worker():
            try:
                with ServeClient(server.host, server.port) as client:
                    for _ in range(n_rounds):
                        count = client.count()
                        observations.append((client.last_epoch, count))
            except Exception as exc:  # surfaces in the main thread
                errors.append(exc)

        writers = [threading.Thread(target=worker) for _ in range(n_clients)]
        for t in writers:
            t.start()
        with ServeClient(server.host, server.port) as updater:
            for i in range(4):
                updater.apply([("insert", "R", (100 + i, 2))])
        for t in writers:
            t.join()
        assert not errors
        # count at epoch e is 2 + e (each batch inserts one joining row)
        for epoch, count in observations:
            assert count == 2 + epoch


class TestLifecycle:
    def test_shutdown_via_client(self):
        session = _session()
        server = SessionServer(session).start_background()
        with ServeClient(server.host, server.port) as client:
            assert client.shutdown() == {"shutting_down": True}
        server.wait(timeout=60)
        assert server.manager.closed
        session.close()

    def test_double_start_raises(self, server):
        with pytest.raises(ServeError):
            server.start_background()

    def test_stop_is_graceful_and_idempotent(self):
        session = _session()
        server = SessionServer(session).start_background()
        server.stop()
        server.stop()
        assert server.manager.closed
        session.close()
