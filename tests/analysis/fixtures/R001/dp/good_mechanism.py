"""Known-good for R001: counts leave only through a mechanism or marker.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def release_count(query, db, epsilon, rng):
    true_count = count_query(query, db)
    return laplace_mechanism(true_count, 1.0, epsilon, rng)


def release_debug(query, db):
    return declassified(count_query(query, db), reason="experiment diagnostics")


@declassified(reason="pre-DP utility")
def raw_count(query, db):
    return count_query(query, db)


def _internal_count(query, db):
    # Private helpers are outside the rule's scope: they are not the
    # module's release surface.
    return count_query(query, db)
