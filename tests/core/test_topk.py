"""Unit tests for the top-k approximation (Sec. 5.4)."""

import pytest

from repro.core import clamp_to_top_k, naive_local_sensitivity, tsens, tsens_topk
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.exceptions import MechanismConfigError, QueryStructureError


class TestClamp:
    def test_clamps_up_to_kth_largest(self):
        rel = Relation(["A"], {(1,): 10, (2,): 7, (3,): 2, (4,): 1})
        clamped = clamp_to_top_k(rel, 2)
        assert dict(clamped.items()) == {(1,): 10, (2,): 7, (3,): 7, (4,): 7}

    def test_k_larger_than_relation_is_identity(self):
        rel = Relation(["A"], {(1,): 10, (2,): 7})
        assert clamp_to_top_k(rel, 5) is rel

    def test_never_decreases_counts(self):
        rel = Relation(["A"], {(1,): 5, (2,): 3, (3,): 1})
        clamped = clamp_to_top_k(rel, 1)
        for row, cnt in rel.items():
            assert clamped.multiplicity(row) >= cnt

    def test_invalid_k(self):
        with pytest.raises(MechanismConfigError):
            clamp_to_top_k(Relation(["A"], [(1,)]), 0)


class TestTopKSensitivity:
    def test_upper_bounds_exact(self, fig3_query, fig3_db):
        exact = tsens(fig3_query, fig3_db).local_sensitivity
        for k in (1, 2, 3):
            bound = tsens_topk(fig3_query, fig3_db, k=k).local_sensitivity
            assert bound >= exact

    def test_large_k_is_exact(self, fig3_query, fig3_db):
        exact = tsens(fig3_query, fig3_db).local_sensitivity
        assert tsens_topk(fig3_query, fig3_db, k=100).local_sensitivity == exact

    def test_monotone_in_k(self, fig3_query, fig3_db):
        bounds = [
            tsens_topk(fig3_query, fig3_db, k=k).local_sensitivity
            for k in (1, 2, 4, 100)
        ]
        assert bounds == sorted(bounds, reverse=True)

    def test_fig1_query(self, fig1_query, fig1_db):
        exact = naive_local_sensitivity(fig1_query, fig1_db).local_sensitivity
        assert tsens_topk(fig1_query, fig1_db, k=1).local_sensitivity >= exact
        assert tsens_topk(fig1_query, fig1_db, k=50).local_sensitivity == exact

    def test_method_label(self, fig3_query, fig3_db):
        assert tsens_topk(fig3_query, fig3_db, k=2).method == "tsens-top2"

    def test_disconnected_rejected(self):
        q = parse_query("R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], [(1,)]), "S": Relation(["B"], [(2,)])}
        )
        with pytest.raises(QueryStructureError):
            tsens_topk(q, db, k=1)
