"""Query evaluation over decomposition trees (Yannakakis-style)."""

from repro.evaluation.yannakakis import (
    BoundTree,
    bind,
    compute_botjoins,
    count_bound,
    count_query,
    default_tree,
    evaluate_bound,
    evaluate_query,
    naive_join,
    semijoin_reduce,
)

__all__ = [
    "BoundTree",
    "bind",
    "compute_botjoins",
    "count_bound",
    "count_query",
    "default_tree",
    "evaluate_bound",
    "evaluate_query",
    "naive_join",
    "semijoin_reduce",
]
