#!/usr/bin/env python
"""Quickstart: local sensitivity of a join counting query.

Builds the paper's running example (Figure 1): four relations whose natural
join produces a single tuple, yet whose local sensitivity is 4 — inserting
``(a2, b2, c1)`` into ``R1`` would create four new join results at once.

Run with::

    python examples/quickstart.py
"""

from repro.engine import Database, Relation
from repro.evaluation import count_query, evaluate_query
from repro.core import local_sensitivity, naive_local_sensitivity
from repro.query import parse_query


def main() -> None:
    # The query and database from Figure 1 of the paper.
    query = parse_query(
        "Q(A,B,C,D,E,F) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)"
    )
    db = Database(
        {
            "R1": Relation(
                ["A", "B", "C"],
                [("a1", "b1", "c1"), ("a1", "b2", "c1"), ("a2", "b1", "c1")],
            ),
            "R2": Relation(
                ["A", "B", "D"], [("a1", "b1", "d1"), ("a2", "b2", "d2")]
            ),
            "R3": Relation(["A", "E"], [("a1", "e1"), ("a2", "e1"), ("a2", "e2")]),
            "R4": Relation(["B", "F"], [("b1", "f1"), ("b2", "f1"), ("b2", "f2")]),
        }
    )

    print(f"query: {query}")
    print(f"join output size |Q(D)| = {count_query(query, db)}")
    print(f"join output: {sorted(evaluate_query(query, db).items())}")

    # TSens: local sensitivity + the most sensitive tuple, in one pass.
    result = local_sensitivity(query, db)
    print(f"\nTSens local sensitivity : {result.local_sensitivity}")
    print(f"most sensitive tuple    : {result.witness.relation} "
          f"{dict(result.witness.assignment)}")

    # Every relation gets its own most sensitive tuple (the Fig. 6b view).
    print("\nper-relation most sensitive tuples:")
    for relation, witness in result.per_relation.items():
        print(f"  {relation}: {dict(witness.assignment)}  δ = {witness.sensitivity}")

    # Tuple sensitivities of arbitrary tuples come from the same tables.
    delta = result.tuple_sensitivity("R1", {"A": "a2", "B": "b2", "C": "c1"})
    print(f"\nδ((a2, b2, c1) in R1) = {delta}  (adding it creates 4 join rows)")

    # Cross-check against brute force (Theorem 3.1) on this tiny instance.
    naive = naive_local_sensitivity(query, db)
    assert naive.local_sensitivity == result.local_sensitivity
    print(f"brute-force check        : LS = {naive.local_sensitivity}  ✓")


if __name__ == "__main__":
    main()
