"""Unit tests for the epoch manager: leases, swaps, retirement, writer."""

import pytest

from repro.engine import Database, Relation
from repro.exceptions import ServeError, UnknownRelationError
from repro.query import parse_query
from repro.serve import AppliedBatch, EpochManager
from repro.session import prepare


def _session(backend="python"):
    query = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    db = Database(
        {
            "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
            "S": Relation(["B", "C"], [(2, 4)]),
        },
        backend=backend,
    )
    return prepare(query, db)


@pytest.fixture()
def manager():
    session = _session()
    manager = EpochManager(session)
    yield manager
    manager.close()
    session.close()


class TestLeases:
    def test_head_starts_at_epoch_zero(self, manager):
        assert manager.head.epoch_id == 0
        assert not manager.head.superseded

    def test_acquire_pins_and_release_unpins(self, manager):
        lease = manager.acquire()
        assert lease.epoch is manager.head
        assert manager.head.refcount == 1
        lease.release()
        assert manager.head.refcount == 0

    def test_release_is_idempotent(self, manager):
        lease = manager.acquire()
        lease.release()
        lease.release()
        assert manager.head.refcount == 0

    def test_read_through_released_lease_raises(self, manager):
        lease = manager.acquire()
        lease.release()
        with pytest.raises(ServeError):
            manager.count(lease)

    def test_lease_context_manager(self, manager):
        with manager.acquire() as lease:
            assert manager.count(lease) == 2
        assert manager.head.refcount == 0


class TestWriter:
    def test_apply_advances_one_epoch_per_batch(self, manager):
        first = manager.apply([("insert", "R", (5, 2))])
        second = manager.apply([("insert", "S", (2, 9))])
        assert isinstance(first, AppliedBatch)
        assert (first.epoch_id, second.epoch_id) == (1, 2)
        assert manager.head.epoch_id == 2
        assert first.count == 3 and second.count == 6
        assert manager.session.updates_applied == 2

    def test_submit_futures_resolve_in_order(self, manager):
        futures = [
            manager.submit([("insert", "R", (10 + i, 2))]) for i in range(4)
        ]
        epochs = [f.result(timeout=60).epoch_id for f in futures]
        assert epochs == [1, 2, 3, 4]

    def test_failed_batch_does_not_advance(self, manager):
        lease = manager.acquire()
        future = manager.submit([("insert", "Nope", (1,))])
        with pytest.raises(UnknownRelationError):
            future.result(timeout=60)
        assert manager.head.epoch_id == 0
        assert not lease.epoch.superseded
        assert manager.count(lease) == 2
        stats = manager.stats()
        assert stats["batches_failed"] == 1
        assert stats["batches_applied"] == 0
        lease.release()

    def test_writer_survives_failure(self, manager):
        with pytest.raises(UnknownRelationError):
            manager.apply([("insert", "Nope", (1,))])
        assert manager.apply([("insert", "R", (5, 2))]).epoch_id == 1


class TestEpochPinning:
    def test_superseded_lease_reads_frozen_snapshot(self, manager):
        old = manager.acquire()
        manager.apply([("insert", "R", (5, 2))])
        new = manager.acquire()
        assert old.epoch.superseded
        assert manager.count(old) == 2
        assert manager.count(new) == 3
        assert manager.probe(old, "S", [(2, 0)]) == [2]
        assert manager.probe(new, "S", [(2, 0)]) == [3]
        assert (
            manager.sensitivity(old).local_sensitivity
            <= manager.sensitivity(new).local_sensitivity
        )
        old.release()
        new.release()

    def test_session_stats_reflect_pinned_epoch(self, manager):
        old = manager.acquire()
        manager.apply([("insert", "R", (5, 2))])
        stats_old = manager.session_stats(old)
        assert stats_old["relation_cardinalities"]["R"] == 2
        new = manager.acquire()
        stats_new = manager.session_stats(new)
        assert stats_new["relation_cardinalities"]["R"] == 3
        old.release()
        new.release()


class TestRetirement:
    def test_drained_superseded_epoch_retires(self, manager):
        lease = manager.acquire()
        epoch = lease.epoch
        manager.apply([("insert", "R", (5, 2))])
        assert not epoch.retired  # still pinned
        manager.count(lease)  # builds the frozen fork
        lease.release()
        assert epoch.retired
        assert epoch.epoch_id not in manager.stats()["live_epochs"]
        assert manager.stats()["retired_epochs"] == 1

    def test_head_never_retires_unpinned(self, manager):
        lease = manager.acquire()
        lease.release()
        assert not manager.head.retired

    def test_read_after_retirement_raises(self, manager):
        lease = manager.acquire()
        other = manager.acquire()
        manager.apply([("insert", "R", (5, 2))])
        other.release()  # epoch still pinned by `lease`
        lease.release()  # now retired
        with pytest.raises(ServeError):
            manager.count(lease)


class TestLifecycle:
    def test_close_refuses_new_work(self):
        session = _session()
        manager = EpochManager(session)
        manager.close()
        with pytest.raises(ServeError):
            manager.acquire()
        with pytest.raises(ServeError):
            manager.submit([("insert", "R", (1, 1))])
        manager.close()  # idempotent
        session.close()

    def test_context_manager(self):
        session = _session()
        with EpochManager(session) as manager:
            with manager.acquire() as lease:
                assert manager.count(lease) == 2
        assert manager.closed
        session.close()

    def test_stats_shape(self, manager):
        stats = manager.stats()
        assert stats["head_epoch"] == 0
        assert stats["live_epochs"] == {0: 0}
        assert stats["queued_batches"] == 0
        assert stats["closed"] is False
