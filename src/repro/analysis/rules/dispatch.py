"""R004 — dispatch-completeness: backend branches must handle both backends.

The engine supports two relation backends (dict rows and
:class:`~repro.engine.columnar.ColumnarRelation`).  An operator that
branches ``if isinstance(x, ColumnarRelation): return columnar_path(...)``
and then simply *ends* silently returns ``None`` for the dict backend —
the classic half-dispatch bug.  After such a branch there must be either
an ``else`` arm, trailing fallback code, or a delegation to the backend
registry inside the branch.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator, List

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    terminal_name,
    walk_skipping_nested_functions,
)

#: Backend classes whose isinstance checks demand a complete dispatch.
BACKEND_CLASSES = frozenset({"ColumnarRelation"})

#: Calls that delegate dispatch to the backend registry, which by
#: construction knows every registered backend.
REGISTRY_DELEGATES = frozenset({"dispatch", "backend_for", "registry"})


def _tests_backend_isinstance(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and terminal_name(node.func) == "isinstance":
            if len(node.args) == 2:
                for name_node in ast.walk(node.args[1]):
                    if terminal_name(name_node) in BACKEND_CLASSES:
                        return True
    return False


def _delegates_to_registry(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and terminal_name(node.func) in REGISTRY_DELEGATES:
                return True
    return False


class DispatchCompletenessRule(Rule):
    rule_id = "R004"
    title = "dispatch-completeness: isinstance backend branch with no fallback"
    rationale = (
        "A branch on isinstance(..., ColumnarRelation) with no else/fallback "
        "silently returns None for the other registered backend."
    )

    def applies_to(self, path: PurePath) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in walk_skipping_nested_functions(ctx.tree):
            for body in _statement_lists(node):
                yield from self._check_block(ctx, body)
        # walk_skipping_nested_functions stops at defs, but dispatch code
        # lives inside them — walk every function body explicitly.
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for body in _statement_lists(node):
                    yield from self._check_block(ctx, body)

    def _check_block(self, ctx: FileContext, body: List[ast.stmt]) -> Iterator[Finding]:
        for index, stmt in enumerate(body):
            if not isinstance(stmt, ast.If):
                continue
            if not _tests_backend_isinstance(stmt.test):
                continue
            if stmt.orelse:
                continue
            if index + 1 < len(body):
                continue  # trailing code handles the other backend
            if _delegates_to_registry(stmt.body):
                continue
            yield ctx.finding(
                self,
                stmt,
                "isinstance backend branch has no else arm, no fallback code, "
                "and no registry delegation; the non-columnar backend falls "
                "through to None",
            )


def _statement_lists(node: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every statement list directly owned by ``node`` and its non-function
    descendants (if/else bodies, loop bodies, with/try blocks, ...)."""
    seen = []
    for child in walk_skipping_nested_functions(node):
        for field_name in ("body", "orelse", "finalbody"):
            body = getattr(child, field_name, None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                seen.append(body)
    yield from seen
