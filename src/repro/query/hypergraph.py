"""Query hypergraphs (Sec. 2.2).

The hypergraph of a conjunctive query has the query variables as vertices
and one hyperedge per atom (the atom's variable set).  GYO decomposition
(:mod:`repro.query.gyo`) and the acyclicity notions operate on this view.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.exceptions import SchemaError


class Hypergraph:
    """A named-edge hypergraph.

    Parameters
    ----------
    edges:
        Mapping from edge name (relation name) to its vertex set.
    """

    def __init__(self, edges: Mapping[str, Iterable[str]]):
        self._edges: Dict[str, FrozenSet[str]] = {
            name: frozenset(vertices) for name, vertices in edges.items()
        }
        if not self._edges:
            raise SchemaError("hypergraph needs at least one edge")
        for name, vertices in self._edges.items():
            if not vertices:
                raise SchemaError(f"hyperedge {name!r} is empty")

    @classmethod
    def of_query(cls, query: ConjunctiveQuery) -> "Hypergraph":
        """The query hypergraph: one edge per atom."""
        return cls({atom.relation: atom.variable_set for atom in query.atoms})

    @property
    def edge_names(self) -> Tuple[str, ...]:
        return tuple(self._edges)

    @property
    def edges(self) -> Mapping[str, FrozenSet[str]]:
        return dict(self._edges)

    def edge(self, name: str) -> FrozenSet[str]:
        return self._edges[name]

    @property
    def vertices(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for vs in self._edges.values():
            out = out | vs
        return out

    def incident_edges(self, vertex: str) -> Tuple[str, ...]:
        """Edges containing ``vertex``."""
        return tuple(name for name, vs in self._edges.items() if vertex in vs)

    def is_connected(self) -> bool:
        """True iff any edge can reach any other through shared vertices."""
        names = list(self._edges)
        if len(names) <= 1:
            return True
        seen = {names[0]}
        frontier = [names[0]]
        while frontier:
            current = frontier.pop()
            for other in names:
                if other in seen:
                    continue
                if self._edges[current] & self._edges[other]:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(names)

    def components(self) -> List[Tuple[str, ...]]:
        """Edge names grouped by connected component, preserving order."""
        names = list(self._edges)
        assigned: Dict[str, int] = {}
        components: List[List[str]] = []
        for name in names:
            if name in assigned:
                continue
            comp_index = len(components)
            members = [name]
            assigned[name] = comp_index
            frontier = [name]
            while frontier:
                current = frontier.pop()
                for other in names:
                    if other in assigned:
                        continue
                    if self._edges[current] & self._edges[other]:
                        assigned[other] = comp_index
                        members.append(other)
                        frontier.append(other)
            components.append(members)
        return [tuple(c) for c in components]

    def restrict(self, edge_names: Iterable[str]) -> "Hypergraph":
        """Sub-hypergraph on the given edges."""
        keep = list(edge_names)
        return Hypergraph({name: self._edges[name] for name in keep})

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{sorted(v)}" for n, v in self._edges.items())
        return f"Hypergraph({parts})"
