"""Generalized hypertree decompositions (Sec. 5.4 "General joins").

For a cyclic query, Algorithm 2 still applies if the atoms can be grouped
into *nodes* — each node materialised as the bag join of its atoms — such
that the node tree is a valid join tree (running intersection over node
attribute sets).  The paper parameterises the resulting complexity by the
max node size ``p``: ``O(m^p d n^{p d} log n)``.

Two entry points:

* :func:`ghd_from_groups` — build a decomposition from an explicit grouping
  plus tree shape.  This is how the paper's Fig. 5 decompositions for q3,
  q△ and q◦ are specified (:mod:`repro.workloads`).
* :func:`auto_decompose` — GYO tree when the query is already acyclic,
  otherwise a bounded search that merges small groups of atoms until the
  contracted hypergraph becomes acyclic.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.query.gyo import gyo_join_tree, gyo_reduce
from repro.query.hypergraph import Hypergraph
from repro.query.jointree import DecompositionTree, TreeNode
from repro.exceptions import DecompositionError


def _group_attributes(query: ConjunctiveQuery, group: Sequence[str]) -> FrozenSet[str]:
    attrs: FrozenSet[str] = frozenset()
    for rel in group:
        attrs = attrs | query.atom(rel).variable_set
    return attrs


def ghd_from_groups(
    query: ConjunctiveQuery,
    groups: Mapping[str, Sequence[str]],
    root: str,
    parent: Mapping[str, str],
) -> DecompositionTree:
    """Build a decomposition from explicit node groups and tree edges.

    Parameters
    ----------
    query:
        The query being decomposed.
    groups:
        Mapping from node id to the relations assigned to that node.  Every
        query relation must appear in exactly one group.
    root:
        Node id of the tree root.
    parent:
        Mapping from non-root node id to parent node id.

    Validity (running intersection, complete assignment) is checked by the
    :class:`~repro.query.jointree.DecompositionTree` constructor; an extra
    check here confirms the grouping covers the query exactly.
    """
    assigned: List[str] = []
    for rels in groups.values():
        assigned.extend(rels)
    if sorted(assigned) != sorted(query.relation_names):
        raise DecompositionError(
            f"groups cover {sorted(assigned)} but query has "
            f"{sorted(query.relation_names)}"
        )
    nodes = [
        TreeNode(node_id, tuple(rels), _group_attributes(query, rels))
        for node_id, rels in groups.items()
    ]
    return DecompositionTree(nodes, root, parent)


def _contracted_tree(
    query: ConjunctiveQuery, groups: Sequence[Tuple[str, ...]]
) -> Optional[DecompositionTree]:
    """Try to arrange ``groups`` into a join tree via GYO on the contracted
    hypergraph (one super-edge per group).  Returns ``None`` when the
    contraction is still cyclic."""
    names = [f"g{i}" for i in range(len(groups))]
    edges = {
        name: _group_attributes(query, group) for name, group in zip(names, groups)
    }
    hg = Hypergraph(edges)
    acyclic, eliminations = gyo_reduce(hg)
    if not acyclic:
        return None
    parent: Dict[str, str] = {}
    root = eliminations[-1][0]
    for ear, witness in eliminations[:-1]:
        if witness is None:
            return None  # disconnected contraction; caller handles components
        parent[ear] = witness
    nodes = [
        TreeNode(name, tuple(group), edges[name]) for name, group in zip(names, groups)
    ]
    try:
        return DecompositionTree(nodes, root, parent)
    except DecompositionError:
        return None


def auto_decompose(
    query: ConjunctiveQuery, max_width: int = 3
) -> DecompositionTree:
    """Find a decomposition with node size ≤ ``max_width``.

    Acyclic queries get their GYO join tree (width 1).  For cyclic queries
    we search over partitions of the atoms with increasing node size,
    preferring fewer merged nodes.  The search is exhaustive over merges of
    at most two groups, which covers the paper's workloads (q3, q△, q◦ all
    need a single width-2 or width-3 node pair); wider queries should pass
    an explicit decomposition via :func:`ghd_from_groups`.
    """
    if not query.is_connected():
        raise DecompositionError(
            "auto_decompose needs a connected query; split into components first"
        )
    rels = list(query.relation_names)
    try:
        return gyo_join_tree(query)
    except Exception:
        pass
    if max_width < 2:
        raise DecompositionError(
            f"query {query.name} is cyclic and max_width={max_width} forbids merging"
        )
    # One merged group of size w (2..max_width), everything else singleton.
    for width in range(2, max_width + 1):
        for merged in combinations(rels, width):
            groups: List[Tuple[str, ...]] = [tuple(merged)]
            groups.extend((r,) for r in rels if r not in merged)
            tree = _contracted_tree(query, groups)
            if tree is not None:
                return tree
    # Two merged groups (disjoint), e.g. the paper's q◦ = {R1R2},{R3R4}.
    for width_a in range(2, max_width + 1):
        for group_a in combinations(rels, width_a):
            rest = [r for r in rels if r not in group_a]
            for width_b in range(2, max_width + 1):
                for group_b in combinations(rest, width_b):
                    groups = [tuple(group_a), tuple(group_b)]
                    groups.extend((r,) for r in rest if r not in group_b)
                    tree = _contracted_tree(query, groups)
                    if tree is not None:
                        return tree
    raise DecompositionError(
        f"no decomposition of width ≤ {max_width} found for {query.name}; "
        "supply one explicitly with ghd_from_groups()"
    )
