"""Full conjunctive queries without self-joins.

A :class:`ConjunctiveQuery` is the paper's

    ``Q(A_D) :- R1(A1), R2(A2), ..., Rm(Am)``

— a natural join of ``m`` distinct base relations under bag semantics, whose
*count* ``|Q(D)|`` is the quantity whose sensitivity we study.  Queries may
carry per-atom selection predicates (Sec. 5.4 "Selections"), which the
algorithms apply by filtering the base relations before running — a tuple
failing its selection has sensitivity 0.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.query.atoms import Atom
from repro.exceptions import SchemaError, SelfJoinError, UnknownRelationError

Predicate = Callable[[Mapping[str, object]], bool]


class ConjunctiveQuery:
    """A full CQ without self-joins, with optional per-atom selections.

    Parameters
    ----------
    atoms:
        The body atoms.  Relation names must be distinct (no self-joins).
    name:
        Optional display name (e.g. ``"q1"``) used in reports.
    selections:
        Optional mapping ``relation name -> predicate`` applied to that
        relation's tuples before the join.

    Examples
    --------
    >>> q = ConjunctiveQuery([Atom("R1", ("A", "B")), Atom("R2", ("B", "C"))])
    >>> sorted(q.variables)
    ['A', 'B', 'C']
    >>> q.is_connected()
    True
    """

    def __init__(
        self,
        atoms: Iterable[Atom],
        name: str = "Q",
        selections: Optional[Mapping[str, Predicate]] = None,
    ):
        self._atoms: Tuple[Atom, ...] = tuple(atoms)
        if not self._atoms:
            raise SchemaError("a conjunctive query needs at least one atom")
        names = [a.relation for a in self._atoms]
        if len(set(names)) != len(names):
            dup = sorted({n for n in names if names.count(n) > 1})
            raise SelfJoinError(
                f"self-joins are not supported; repeated relations: {dup}"
            )
        self.name = name
        self._selections: Dict[str, Predicate] = dict(selections or {})
        for rel_name in self._selections:
            if rel_name not in names:
                raise UnknownRelationError(rel_name)
        self._by_relation = {a.relation: a for a in self._atoms}

    # ------------------------------------------------------------- structure
    @property
    def atoms(self) -> Tuple[Atom, ...]:
        return self._atoms

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Relation names in body order."""
        return tuple(a.relation for a in self._atoms)

    @property
    def variables(self) -> Tuple[str, ...]:
        """All query variables in first-appearance order (the head ``A_D``)."""
        seen: Dict[str, None] = {}
        for atom in self._atoms:
            for var in atom.variables:
                seen.setdefault(var, None)
        return tuple(seen)

    @property
    def selections(self) -> Mapping[str, Predicate]:
        return dict(self._selections)

    def atom(self, relation: str) -> Atom:
        """The atom over ``relation``."""
        try:
            return self._by_relation[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None

    def occurrences(self, variable: str) -> Tuple[str, ...]:
        """Relations whose atoms mention ``variable``, in body order."""
        return tuple(a.relation for a in self._atoms if variable in a.variable_set)

    def join_variables(self) -> Tuple[str, ...]:
        """Variables appearing in at least two atoms."""
        return tuple(v for v in self.variables if len(self.occurrences(v)) >= 2)

    def exclusive_variables(self, relation: str) -> Tuple[str, ...]:
        """Variables of ``relation`` appearing in no other atom (Sec. 5.4
        'Other': these are ignored during sensitivity computation and
        extrapolated back into the witness tuple)."""
        atom = self.atom(relation)
        return tuple(
            v for v in atom.variables if len(self.occurrences(v)) == 1
        )

    def is_connected(self) -> bool:
        """True iff the query hypergraph is connected."""
        return len(self.connected_components()) == 1

    def connected_components(self) -> List[Tuple[Atom, ...]]:
        """Partition the atoms into hypergraph-connected components.

        Two atoms are connected when they share a variable.  Disconnected
        queries are handled by running the algorithms per component and
        combining via cross-product counts (Sec. 5.4).
        """
        remaining = list(self._atoms)
        components: List[Tuple[Atom, ...]] = []
        while remaining:
            seed = remaining.pop(0)
            group = [seed]
            vars_seen = set(seed.variable_set)
            changed = True
            while changed:
                changed = False
                for atom in list(remaining):
                    if atom.variable_set & vars_seen:
                        group.append(atom)
                        vars_seen |= atom.variable_set
                        remaining.remove(atom)
                        changed = True
            components.append(tuple(group))
        return components

    def subquery(self, atoms: Sequence[Atom], name: Optional[str] = None) -> "ConjunctiveQuery":
        """A query over a subset of this query's atoms, keeping selections."""
        keep = {a.relation for a in atoms}
        selections = {r: p for r, p in self._selections.items() if r in keep}
        return ConjunctiveQuery(atoms, name=name or self.name, selections=selections)

    # ------------------------------------------------------------- data side
    def bound_relation(self, db: Database, relation: str, parallel=None) -> Relation:
        """The relation renamed to query variables, with selections applied.

        The database column names are mapped positionally onto the atom's
        variables, then the atom's selection predicate (if any) filters the
        bag.  All algorithms consume relations through this method so that
        selections are honoured uniformly.  ``parallel`` (a
        :class:`~repro.engine.parallel.ParallelContext`) fans the selection
        filter across shard workers when active; ``None`` and single-worker
        contexts run the identical serial filter.
        """
        atom = self.atom(relation)
        base = db.relation(relation)
        if base.schema.arity != atom.arity:
            raise SchemaError(
                f"atom {atom} has arity {atom.arity} but relation "
                f"{relation!r} has arity {base.schema.arity}"
            )
        renamed = base.rename(dict(zip(base.attributes, atom.variables)))
        predicate = self._selections.get(relation)
        if predicate is not None:
            if parallel is not None and parallel.active:
                renamed = parallel.filter(renamed, predicate)
            else:
                renamed = renamed.filter(predicate)
        return renamed

    def validate_against(self, db: Database) -> None:
        """Check every atom matches a database relation in name and arity."""
        for atom in self._atoms:
            if atom.relation not in db:
                raise UnknownRelationError(atom.relation)
            if db.relation(atom.relation).schema.arity != atom.arity:
                raise SchemaError(
                    f"atom {atom} arity mismatch with relation "
                    f"{atom.relation!r} ({db.relation(atom.relation).schema.arity})"
                )

    def with_selection(self, relation: str, predicate: Predicate) -> "ConjunctiveQuery":
        """Copy of this query adding a selection predicate on ``relation``."""
        self.atom(relation)
        selections = dict(self._selections)
        selections[relation] = predicate
        return ConjunctiveQuery(self._atoms, name=self.name, selections=selections)

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._atoms)
        head = ", ".join(self.variables)
        return f"{self.name}({head}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery<{self}>"
