"""Property tests: persistence round trips preserve bags exactly."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine import Database, Relation
from repro.engine.io import (
    database_from_json,
    database_to_json,
    read_relation_csv,
    write_relation_csv,
)

# CSV stores values as text, so generate string-valued relations for the
# CSV property and arbitrary JSON-safe scalars for the JSON property.
csv_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1,
    max_size=6,
).filter(lambda s: s.strip() == s and s != "__count__")
csv_rows = st.dictionaries(
    st.tuples(csv_values, csv_values),
    st.integers(min_value=1, max_value=50),
    max_size=8,
)

json_scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(max_size=5),
)
json_rows = st.dictionaries(
    st.tuples(json_scalars, json_scalars),
    st.integers(min_value=1, max_value=10**12),
    max_size=8,
)


class TestCsvRoundTrip:
    @given(csv_rows, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, rows, expand):
        import tempfile
        from pathlib import Path

        # Expanded mode writes one line per occurrence — keep counts small.
        if expand:
            rows = {k: min(v, 5) for k, v in rows.items()}
        relation = Relation(["A", "B"], rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "r.csv"
            write_relation_csv(relation, path, expand_counts=expand)
            assert read_relation_csv(path) == relation


class TestJsonRoundTrip:
    @given(json_rows)
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, rows):
        db = Database({"R": Relation(["A", "B"], rows)})
        loaded = database_from_json(database_to_json(db))
        assert loaded.relation("R") == db.relation("R")
