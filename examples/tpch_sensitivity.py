#!/usr/bin/env python
"""TPC-H sensitivity analysis: TSens vs Elastic on the paper's q1/q2/q3.

Generates a synthetic TPC-H instance, then for each of the paper's three
queries reports the local sensitivity (TSens), the Elastic upper bound, the
most sensitive tuple per relation, and the wall-clock times — a miniature
of Figures 6a/6b/7.

Run with::

    python examples/tpch_sensitivity.py [scale]

The optional scale factor defaults to 0.001 (≈9k tuples); the paper sweeps
up to 10.
"""

import sys

from repro.baselines import elastic_per_relation, plan_from_tree
from repro.datasets import generate_tpch, table_sizes
from repro.experiments.runner import measure_workload
from repro.query import auto_decompose
from repro.workloads import tpch_workloads


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    base = generate_tpch(scale, seed=0)
    print(f"TPC-H at scale {scale}: {table_sizes(base)}\n")

    for workload in tpch_workloads():
        measurement = measure_workload(workload, base)
        print(f"=== {workload.name}: {workload.description}")
        print(f"  query              : {workload.query}")
        print(f"  |Q(D)|             : {measurement.count:,}")
        print(
            f"  TSens LS           : {measurement.tsens_ls:,}"
            f"  ({measurement.tsens_seconds:.2f}s)"
        )
        print(
            f"  Elastic bound      : {measurement.elastic_ls:,}"
            f"  ({measurement.elastic_seconds:.3f}s)"
        )
        print(f"  evaluation time    : {measurement.evaluation_seconds:.2f}s")

        # The Fig. 6b view: most sensitive tuple per relation, next to the
        # Elastic bound obtained when that relation alone is protected.
        db = workload.prepared(base)
        tree = workload.tree or auto_decompose(workload.query)
        elastic = elastic_per_relation(
            workload.query, db, plan=plan_from_tree(tree)
        )
        print("  per-relation most sensitive tuples:")
        for relation, witness in measurement.result.per_relation.items():
            if relation in workload.skip_relations:
                detail = "skipped (superkey ⇒ δ ≤ 1)"
            else:
                detail = f"{dict(witness.assignment)} δ={witness.sensitivity:,}"
            print(f"    {relation:>3}: {detail}   elastic={elastic[relation]:,}")
        print()


if __name__ == "__main__":
    main()
