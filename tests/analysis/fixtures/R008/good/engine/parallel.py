"""Known-good: chain execution keeps intermediates worker-resident."""


def import_result(payload, vocab):
    raise NotImplementedError


def _combine(parts, regroup):
    raise NotImplementedError


def encode_result(part):
    raise NotImplementedError


class WorkerState:
    def run_plan(self, plan, inputs):
        # Shards are loaded once; everything after this ships only
        # opaque descriptors and per-shard aggregates back and forth.
        load_payloads = {
            name: encode_result(inputs[name]) for name in plan.loads
        }
        emit_parts = {}
        for segment in plan.segments():
            for result in self._pool.run(segment):
                for name, payload in result["emits"].items():
                    emit_parts.setdefault(name, []).append(payload)
        del load_payloads
        return self._reduce_emits(emit_parts)

    def _reduce_emits(self, emit_parts):
        # The sanctioned final reduction point.
        return {
            name: _combine(
                [import_result(p, self._vocab) for p in payloads],
                regroup=True,
            )
            for name, payloads in emit_parts.items()
        }

    def fetch(self, name):
        # The sanctioned explicit-materialisation point.
        return _combine(
            [import_result(p, self._vocab) for p in self._parts[name]],
            regroup=True,
        )
