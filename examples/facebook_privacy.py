#!/usr/bin/env python
"""Differentially private graph-pattern counting on an ego-network.

Reproduces the paper's Facebook scenario end to end through the session
API: build the circle edge tables, prepare each triangle / path / cycle /
star counting query once, then answer it under ε-differential privacy
with TSensDP and the PrivSQL-style baseline via the unified
``session.release(...)`` facade.  R2 is the primary private relation, as
in Sec. 7.3; a :class:`~repro.dp.accountant.BudgetAccountant` tracks the
combined spend of both releases per query.

Run with::

    python examples/facebook_privacy.py [epsilon]
"""

import sys

import numpy as np

from repro import prepare
from repro.datasets import generate_ego_network, graph_statistics
from repro.dp import BudgetAccountant
from repro.experiments.table2 import loose_bound
from repro.workloads import facebook_workloads


def main() -> None:
    epsilon = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    db = generate_ego_network(seed=0)
    print(f"ego-network tables: {graph_statistics(db)}")
    print(f"privacy budget ε = {epsilon} per release "
          f"(half for threshold learning)\n")
    rng = np.random.default_rng(2026)

    for workload in facebook_workloads():
        assert workload.primary is not None
        # One prepare per query; both mechanisms reuse its cached
        # sensitivity pass and truncation oracle.
        session = prepare(workload.query, db, tree=workload.tree)
        oracle = session.truncation_oracle(workload.primary)
        ell = loose_bound(oracle.max_primary_sensitivity, floor=workload.ell)
        accountant = BudgetAccountant(2 * epsilon)
        tsens_out = session.release(
            epsilon,
            mechanism="tsensdp",
            primary=workload.primary,
            ell=ell,
            accountant=accountant,
            rng=rng,
        )
        privsql_out = session.release(
            epsilon,
            mechanism="privsql",
            primary=workload.primary,
            accountant=accountant,
            rng=rng,
        )
        print(f"=== {workload.name}: {workload.description}")
        print(f"  true count          : {tsens_out.true_count:,}")
        print(f"  local sensitivity   : {oracle.local_sensitivity:,}")
        print(
            f"  TSensDP             : answer={tsens_out.answer:,.0f}"
            f"  τ={tsens_out.tau}  GS={tsens_out.global_sensitivity}"
            f"  rel.err={tsens_out.relative_error:.2%}"
        )
        print(
            f"  PrivSQL             : answer={privsql_out.answer:,.0f}"
            f"  GS={privsql_out.global_sensitivity:,}"
            f"  rel.err={privsql_out.relative_error:.2%}"
        )
        print(
            f"  budget ledger       : {accountant.ledger()} "
            f"(remaining {accountant.remaining:.3g})"
        )
        print()


if __name__ == "__main__":
    main()
