"""Integration tests asserting the paper's headline *shape* claims.

These are the reproduction's acceptance tests: they run miniature versions
of each experiment and check the qualitative findings of Sec. 7 — who wins,
in which direction, and by large-vs-small margins — without pinning
absolute numbers (our data is synthetic and the engine is pure Python).
"""

import pytest

from repro.experiments import fig6a, fig6b, fig7, param_analysis, table1, table2

TPCH_SCALES = (0.0002,)
SEED = 11


@pytest.fixture(scope="module")
def fig6a_rows():
    return fig6a.run(scales=TPCH_SCALES, seed=SEED)


@pytest.fixture(scope="module")
def table1_rows():
    return table1.run(seed=SEED)


class TestFig6aShapes:
    def test_covers_all_queries(self, fig6a_rows):
        assert {row["query"] for row in fig6a_rows} == {"q1", "q2", "q3"}

    def test_tsens_never_looser_than_elastic(self, fig6a_rows):
        for row in fig6a_rows:
            assert row["tsens_ls"] <= row["elastic_ls"]

    def test_cyclic_gap_is_orders_of_magnitude(self, fig6a_rows):
        q3 = next(row for row in fig6a_rows if row["query"] == "q3")
        assert q3["elastic_over_tsens"] > 100

    def test_report_renders(self, fig6a_rows):
        text = fig6a.report(fig6a_rows)
        assert "Figure 6a" in text and "q3" in text


class TestFig6bShapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig6b.run(scale=0.0002, seed=SEED)

    def test_one_row_per_relation(self, rows):
        assert [row["relation"] for row in rows] == [
            "R", "N", "S", "PS", "P", "C", "O", "L",
        ]

    def test_lineitem_skipped(self, rows):
        lineitem = next(row for row in rows if row["relation"] == "L")
        assert "skip" in lineitem["most_sensitive_tuple"]

    def test_tuple_sensitivity_below_elastic(self, rows):
        for row in rows:
            if "skip" in row["most_sensitive_tuple"]:
                continue
            assert row["tuple_sensitivity"] <= row["elastic_sensitivity"]

    def test_report_renders(self, rows):
        assert "Figure 6b" in fig6b.report(rows)


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7.run(scales=TPCH_SCALES, seed=SEED, repetitions=1)

    def test_elastic_is_fastest(self, rows):
        for row in rows:
            assert row["elastic_seconds"] <= row["tsens_seconds"]

    def test_all_timings_positive(self, rows):
        for row in rows:
            assert row["tsens_seconds"] > 0
            assert row["evaluation_seconds"] > 0

    def test_report_renders(self, rows):
        assert "Figure 7" in fig7.report(rows)


class TestTable1Shapes:
    def test_covers_all_queries(self, table1_rows):
        assert [row["query"] for row in table1_rows] == [
            "q4", "qw", "q_cycle", "q_star",
        ]

    def test_tsens_tighter_everywhere(self, table1_rows):
        for row in table1_rows:
            assert row["tsens_ls"] <= row["elastic_ls"]

    def test_cycle_gap_large(self, table1_rows):
        cycle = next(r for r in table1_rows if r["query"] == "q_cycle")
        assert cycle["elastic_over_tsens"] > 10

    def test_elastic_faster_than_tsens(self, table1_rows):
        for row in table1_rows:
            assert row["elastic_seconds"] <= row["tsens_seconds"]

    def test_report_renders(self, table1_rows):
        assert "Table 1" in table1.report(table1_rows)


class TestTable2Shapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2.run(
            tpch_scale=0.0005, n_runs=5, seed=SEED, queries=("q1", "q4", "q_star")
        )

    def test_two_mechanisms_per_query(self, rows):
        queries = [row["query"] for row in rows]
        assert queries.count("q4") == 2

    def test_tsensdp_beats_privsql_on_q4_and_qstar(self, rows):
        """The paper's central DP claim, on the queries where PrivSQL's
        frequency bound explodes (q4 triangle, q★)."""
        for name in ("q4", "q_star"):
            tsens_row = next(
                r for r in rows if r["query"] == name and r["mechanism"] == "TSensDP"
            )
            privsql_row = next(
                r for r in rows if r["query"] == name and r["mechanism"] == "PrivSQL"
            )
            assert (
                tsens_row["median_rel_error"] <= privsql_row["median_rel_error"]
            )
            assert (
                tsens_row["median_global_sens"] < privsql_row["median_global_sens"]
            )

    def test_report_renders(self, rows):
        assert "Table 2" in table2.report(rows)


class TestParamAnalysisShapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return param_analysis.run(
            bounds=(1, 100, 1000, 100_000), n_runs=5, seed=SEED
        )

    def test_tiny_ell_has_large_bias(self, rows):
        assert rows[0]["ell"] == 1
        assert rows[0]["median_rel_bias"] > 0.5

    def test_sweet_spot_beats_extremes(self, rows):
        errors = {row["ell"]: row["median_rel_error"] for row in rows}
        best = min(errors.values())
        assert errors[1] > best
        assert errors[100_000] > best

    def test_report_renders(self, rows):
        assert "ℓ sweep" in param_analysis.report(rows)
