"""Known-bad for R001: a public dp/ function releases raw counts.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def release_count(query, db):
    true_count = count_query(query, db)
    return true_count  # leak: no mechanism, no @declassified


def log_sensitivity(oracle):
    print(oracle.base_count)  # leak: raw count to stdout


def release_derived(query, db):
    doubled = 2 * count_query(query, db)
    return doubled  # leak survives arithmetic: taint propagates
