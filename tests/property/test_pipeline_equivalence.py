"""Worker-resident fold pipelines == per-op sharding == serial.

The resident chain path (PR 10) is a pure execution strategy on top of
the per-op sharded path (PR 7), which is itself bag-identical to serial
evaluation.  This suite pins the three-way agreement on both execution
backends:

* ``count()``, ``sensitivity()`` and ``top_k()`` agree across serial,
  per-op sharded (``chains=False``) and worker-resident (``chains=True``)
  sessions, over acyclic / cyclic-GHD / disconnected query shapes;
* the same holds for *maintained* sessions under random interleaved
  update batches — resident registers fold committed deltas worker-side
  and must stay bag-identical to the serial fold;
* and through the serving layer: an :class:`EpochManager` over a
  resident-parallel session pins epoch-consistent snapshots (a lease
  acquired at epoch 0 answers from the pre-update database while writer
  batches fold into newer epochs).

``min_shard_rows=0`` forces the chain gate open on tiny random
instances; worker pools are module-scoped because process spawns per
hypothesis example would dominate the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import prepare
from repro.datasets import (
    random_acyclic_query,
    random_database,
    random_update_stream,
)
from repro.engine.parallel import ParallelContext
from repro.query import parse_query
from repro.serve import EpochManager

seeds = st.integers(min_value=0, max_value=10_000)

BACKENDS = ("python", "columnar")


@pytest.fixture(scope="module")
def contexts():
    pools = {
        "resident": ParallelContext(2, min_shard_rows=0, chains=True),
        "per-op": ParallelContext(2, min_shard_rows=0, chains=False),
    }
    yield pools
    for context in pools.values():
        context.close()


def _assert_same_result(candidate, serial, query, label):
    assert candidate.local_sensitivity == serial.local_sensitivity, label
    for relation in query.relation_names:
        a = candidate.per_relation[relation]
        b = serial.per_relation[relation]
        assert a.sensitivity == b.sensitivity, (label, relation)
        assert dict(a.assignment) == dict(b.assignment), (label, relation)


def _assert_three_way_agreement(query, db, contexts, top_k=True):
    serial = prepare(query, db)
    count = serial.count()
    result = serial.sensitivity(method="tsens")
    k_result = serial.top_k(2) if top_k else None
    for label, context in contexts.items():
        session = prepare(query, db, parallel=context)
        try:
            assert session.count() == count, label
            _assert_same_result(
                session.sensitivity(method="tsens"), result, query, label
            )
            if top_k:
                _assert_same_result(session.top_k(2), k_result, query, label)
        finally:
            session.close()


def _batched(stream, rng):
    batches = []
    cursor = 0
    while cursor < len(stream):
        size = int(rng.integers(1, 4))
        batches.append(stream[cursor : cursor + size])
        cursor += size
    return batches


def _replayed(db, stream):
    for op, relation, row in stream:
        db = (
            db.add_tuple(relation, row)
            if op == "insert"
            else db.remove_tuple(relation, row)
        )
    return db


@pytest.mark.parametrize("backend", BACKENDS)
class TestResidentEqualsPerOpEqualsSerial:
    @given(seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_acyclic(self, backend, seed, contexts):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=1 + int(rng.integers(0, 5)))
        db = random_database(query, rng, backend=backend)
        _assert_three_way_agreement(query, db, contexts)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_cyclic_ghd(self, backend, seed, contexts):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=3, max_rows=5, backend=backend)
        _assert_three_way_agreement(query, db, contexts, top_k=False)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_disconnected(self, backend, seed, contexts):
        """Each component compiles (or declines) its own chain."""
        rng = np.random.default_rng(seed)
        query = parse_query("R(A,B), S(B,C), T(X,Y), U(Y,Z)")
        db = random_database(query, rng, domain_size=4, max_rows=6, backend=backend)
        _assert_three_way_agreement(query, db, contexts, top_k=False)

    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=12))
    @settings(max_examples=8, deadline=None)
    def test_interleaved_update_batches(self, backend, seed, n_updates, contexts):
        """Maintained resident registers fold delta batches exactly."""
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2 + int(rng.integers(0, 3)))
        db = random_database(query, rng, backend=backend)
        sessions = {
            label: prepare(query, db, parallel=context)
            for label, context in contexts.items()
        }
        try:
            for session in sessions.values():
                session.count()
                session.sensitivity()  # materialise maintained state
            stream = random_update_stream(query, db, rng, n_updates)
            mutated = db
            for batch in _batched(stream, rng):
                mutated = _replayed(mutated, batch)
                for session in sessions.values():
                    session.apply(batch)
                # Read between batches: resident registers must reflect
                # every committed fold, not just the final state.
                counts = {
                    label: session.count() for label, session in sessions.items()
                }
                assert counts["resident"] == counts["per-op"]
            fresh = prepare(query, mutated)
            count = fresh.count()
            result = fresh.sensitivity(method="tsens")
            for label, session in sessions.items():
                assert session.count() == count, label
                _assert_same_result(
                    session.sensitivity(method="tsens"), result, query, label
                )
        finally:
            for session in sessions.values():
                session.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestResidentThroughServeEpochs:
    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=10))
    @settings(max_examples=6, deadline=None)
    def test_epoch_snapshots_stay_consistent(
        self, backend, seed, n_updates, contexts
    ):
        """A lease pinned before the writer stream answers from its own
        epoch even while resident registers fold newer batches."""
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db, parallel=contexts["resident"])
        manager = EpochManager(session)
        pinned = manager.acquire()
        baseline = (manager.count(pinned), manager.sensitivity(pinned).local_sensitivity)

        stream = random_update_stream(query, db, rng, n_updates)
        batches = _batched(stream, rng)
        mutated = db
        for batch in batches:
            mutated = _replayed(mutated, batch)
            manager.apply(batch)

        # The pinned lease still reads the epoch-0 snapshot.
        fresh_before = prepare(query, db)
        assert baseline == (
            fresh_before.count(),
            fresh_before.sensitivity().local_sensitivity,
        )
        assert (
            manager.count(pinned),
            manager.sensitivity(pinned).local_sensitivity,
        ) == baseline

        # The head serves the fully-folded state.
        head = manager.acquire()
        fresh_after = prepare(query, mutated)
        assert manager.count(head) == fresh_after.count()
        assert (
            manager.sensitivity(head).local_sensitivity
            == fresh_after.sensitivity().local_sensitivity
        )
        head.release()
        pinned.release()
        manager.close()
        session.close()
