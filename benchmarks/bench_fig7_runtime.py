"""Benchmark E3 — Figure 7: runtime of TSens vs Elastic vs evaluation.

pytest-benchmark separately times, per TPC-H query, (a) the TSens pass,
(b) the Elastic static analysis, and (c) the count-only Yannakakis
evaluation.  The figure's claims: Elastic ≪ evaluation ≈ TSens (within a
small constant factor).
"""

import pytest

from repro.baselines import elastic_sensitivity, plan_from_tree
from repro.core import local_sensitivity
from repro.evaluation import count_query
from repro.query import auto_decompose
from repro.workloads import q1_workload, q2_workload, q3_workload

WORKLOADS = {
    "q1": q1_workload(),
    "q2": q2_workload(),
    "q3": q3_workload(),
}


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_fig7_tsens_time(benchmark, tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    benchmark.pedantic(
        lambda: local_sensitivity(
            workload.query, db, tree=workload.tree,
            skip_relations=workload.skip_relations,
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_fig7_elastic_time(benchmark, tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    tree = workload.tree or auto_decompose(workload.query)
    plan = plan_from_tree(tree)
    benchmark(lambda: elastic_sensitivity(workload.query, db, plan=plan))


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_fig7_evaluation_time(benchmark, tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    benchmark.pedantic(
        lambda: count_query(workload.query, db, tree=workload.tree),
        rounds=3,
        iterations=1,
    )
