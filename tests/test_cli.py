"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def csv_data(tmp_path):
    data = tmp_path / "data"
    data.mkdir()
    (data / "R.csv").write_text("A,B\n1,2\n3,2\n")
    (data / "S.csv").write_text("B,C\n2,9\n")
    return data


class TestSensitivityCommand:
    def test_prints_local_sensitivity(self, csv_data, capsys):
        code = main(
            ["sensitivity", "--query", "R(A,B), S(B,C)", "--data", str(csv_data)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "local sensitivity: 2" in out
        assert "witness" in out

    def test_method_naive(self, csv_data, capsys):
        code = main(
            [
                "sensitivity", "--query", "R(A,B), S(B,C)",
                "--data", str(csv_data), "--method", "naive",
            ]
        )
        assert code == 0
        assert "method           : naive" in capsys.readouterr().out

    def test_parse_error_is_reported(self, csv_data, capsys):
        code = main(
            ["sensitivity", "--query", "!!!", "--data", str(csv_data)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_int_columns(self, csv_data, capsys):
        code = main(
            [
                "sensitivity", "--query", "R(A,B), S(B,C)",
                "--data", str(csv_data), "--int-columns",
            ]
        )
        assert code == 0

    def test_int_columns_parses_values_as_ints(self, csv_data, capsys):
        code = main(
            [
                "sensitivity", "--query", "R(A,B), S(B,C)",
                "--data", str(csv_data), "--int-columns",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # values must be ints, not strings, in the witness report
        assert "'B': 2" in out and "'B': '2'" not in out

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_backend_flag_gives_same_answer(self, csv_data, capsys, backend):
        code = main(
            [
                "sensitivity", "--query", "R(A,B), S(B,C)",
                "--data", str(csv_data), "--backend", backend,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "local sensitivity: 2" in out


class TestCountCommand:
    def test_counts(self, csv_data, capsys):
        code = main(["count", "--query", "R(A,B), S(B,C)", "--data", str(csv_data)])
        assert code == 0
        assert capsys.readouterr().out.strip() == "2"


class TestGenerateCommand:
    def test_tpch_to_json(self, tmp_path, capsys):
        out_file = tmp_path / "tpch.json"
        code = main(
            [
                "generate", "tpch", "--scale", "0.0001",
                "--seed", "1", "--output", str(out_file),
            ]
        )
        assert code == 0
        document = json.loads(out_file.read_text())
        assert "Lineitem" in document["relations"]

    def test_generated_json_feeds_sensitivity(self, tmp_path, capsys):
        out_file = tmp_path / "tpch.json"
        main(
            [
                "generate", "tpch", "--scale", "0.0001",
                "--seed", "1", "--output", str(out_file),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "sensitivity",
                "--query", "Nation(RK,NK), Customer(NK,CK)",
                "--data", str(out_file),
            ]
        )
        assert code == 0
        assert "local sensitivity:" in capsys.readouterr().out


class TestExperimentCommand:
    def test_fig6a_small(self, capsys):
        code = main(
            ["experiment", "fig6a", "--scales", "0.0001", "--seed", "3"]
        )
        assert code == 0
        assert "Figure 6a" in capsys.readouterr().out

    def test_table1(self, capsys):
        code = main(["experiment", "table1", "--seed", "3"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_params_few_runs(self, capsys):
        code = main(["experiment", "params", "--runs", "2", "--seed", "3"])
        assert code == 0
        assert "ℓ sweep" in capsys.readouterr().out


class TestWhereClauses:
    def test_where_filters(self, csv_data, capsys):
        code = main(
            [
                "count", "--query", "R(A,B), S(B,C)", "--data", str(csv_data),
                "--where", "R: A = '1'",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_where_in_sensitivity(self, csv_data, capsys):
        code = main(
            [
                "sensitivity", "--query", "R(A,B), S(B,C)",
                "--data", str(csv_data), "--where", "R: A != '1'",
            ]
        )
        assert code == 0
        assert "local sensitivity" in capsys.readouterr().out

    def test_malformed_where(self, csv_data, capsys):
        code = main(
            [
                "count", "--query", "R(A,B), S(B,C)", "--data", str(csv_data),
                "--where", "no colon here",
            ]
        )
        assert code == 2


class TestExplainCommand:
    def test_explain_renders(self, csv_data, capsys):
        code = main(
            ["explain", "--query", "R(A,B), S(B,C)", "--data", str(csv_data)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TSens explanation" in out
        assert "multiplicity tables:" in out


class TestServeClientCommands:
    """End-to-end: ``repro serve`` subprocess driven by ``repro client``."""

    @pytest.fixture()
    def served(self, csv_data):
        import os
        import re
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--query", "R(A,B), S(B,C)", "--data", str(csv_data),
                "--int-columns", "--default-epsilon", "5",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r" on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no bound-port banner in {banner!r}"
            yield int(match.group(1))
            main(["client", "shutdown", "--port", match.group(1)])
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()

    def test_client_drives_served_session(self, served, capsys):
        port = str(served)
        assert main(["client", "count", "--port", port]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["ok"] is True
        assert frame["result"]["count"] == 2
        assert frame["epoch"] == 0

        assert main([
            "client", "apply", "--port", port,
            "--params", '{"batch": [["insert", "R", [5, 2]]]}',
        ]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["result"]["count"] == 3
        assert frame["epoch"] == 1

        assert main([
            "client", "release", "--port", port, "--tenant", "alice",
            "--params",
            '{"epsilon": 0.5, "mechanism": "tsensdp", "primary": "R", "ell": 5}',
        ]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["result"]["mechanism_outcome"] == "TSensDPOutcome"

        assert main(["client", "stats", "--port", port]) == 0
        stats = json.loads(capsys.readouterr().out)["result"]
        assert stats["epochs"]["head_epoch"] == 1
        assert [t["tenant_id"] for t in stats["tenants"]] == ["alice"]

    def test_client_surfaces_remote_errors(self, served, capsys):
        code = main([
            "client", "probe", "--port", str(served),
            "--params", '{"relation": "Nope", "rows": [[1, 1]]}',
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_client_rejects_malformed_params(self, capsys):
        code = main([
            "client", "count", "--port", "1", "--params", "not json",
        ])
        assert code == 2
        assert "JSON object" in capsys.readouterr().err


class TestExplainSessionStats:
    def test_explain_prints_session_stats(self, csv_data, capsys):
        code = main(
            ["explain", "--query", "R(A,B), S(B,C)", "--data", str(csv_data)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "session stats:" in out
        assert '"relation_cardinalities"' in out

    def test_client_reports_unreachable_server(self, capsys):
        code = main(["client", "count", "--port", "1"])
        assert code == 2
        assert "could not connect" in capsys.readouterr().err
