"""Yannakakis-style evaluation of (decomposed) conjunctive queries.

This module binds a structural decomposition tree to a concrete database —
materialising each node as the bag join of its assigned atoms — and then
evaluates the query:

* :func:`count_query` — ``|Q(D)|`` via a single bottom-up botjoin pass
  (near-linear for join trees, the paper's query-evaluation baseline in
  Fig. 7 / Table 1);
* :func:`evaluate_query` — the full join output, using semijoin reduction
  before joining so intermediate sizes stay bounded by input + output.

The botjoin pass implemented here (:func:`compute_botjoins`) is shared with
the sensitivity algorithms in :mod:`repro.core.acyclic`, which add the
top-down topjoin pass on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.engine.operators import group_by, join, join_all, semijoin
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import auto_decompose
from repro.query.jointree import DecompositionTree
from repro.exceptions import InternalError


@dataclass
class BoundTree:
    """A decomposition tree with each node materialised over a database.

    Attributes
    ----------
    tree:
        The structural decomposition.
    node_relations:
        ``node_id -> Relation``: the bag join of the node's atoms, with the
        query's selections already applied and columns renamed to query
        variables.
    atom_relations:
        ``relation name -> Relation``: the individual bound atoms (needed
        when a GHD node holds several relations and one must be excluded).
    query:
        The query this binding was made for.
    """

    tree: DecompositionTree
    node_relations: Dict[str, Relation]
    atom_relations: Dict[str, Relation]
    query: ConjunctiveQuery

    def relation(self, node_id: str) -> Relation:
        return self.node_relations[node_id]

    def atom_relation(self, relation: str) -> Relation:
        return self.atom_relations[relation]


def bind(
    query: ConjunctiveQuery,
    tree: DecompositionTree,
    db: Database,
    parallel=None,
) -> BoundTree:
    """Materialise every tree node over ``db``.

    Width-1 nodes are just the (renamed, selection-filtered) base relation;
    wider GHD nodes are the bag join of their atoms.  The per-node join cost
    is the paper's ``n^p`` factor.  ``parallel`` (a
    :class:`~repro.engine.parallel.ParallelContext`) shard-partitions the
    selection filters and multi-atom node joins; inactive contexts take the
    identical serial path.
    """
    query.validate_against(db)
    atom_relations: Dict[str, Relation] = {
        rel: query.bound_relation(db, rel, parallel=parallel)
        for rel in query.relation_names
    }
    node_relations: Dict[str, Relation] = {}
    sharded = parallel is not None and parallel.active
    for node_id in tree.node_ids:
        node = tree.node(node_id)
        parts = [atom_relations[rel] for rel in node.relations]
        if sharded:
            keys = [f"atom:{rel}" for rel in node.relations]
            node_relations[node_id] = parallel.join_all(parts, keys=keys)
        else:
            node_relations[node_id] = join_all(parts)
    return BoundTree(
        tree=tree,
        node_relations=node_relations,
        atom_relations=atom_relations,
        query=query,
    )


def bound_delta(
    query: ConjunctiveQuery,
    relation: str,
    rows: Mapping[Tuple[object, ...], int],
    relation_cls,
) -> Relation:
    """A signed delta relation bound to ``relation``'s atom.

    Mirrors :meth:`ConjunctiveQuery.bound_relation` for a small update
    batch: columns are renamed positionally to the atom's variables and
    the query's selection (if any) filters rows *before* they enter the
    maintained join state — filtered rows still reach the database, they
    just contribute nothing to any derived level.
    """
    atom = query.atom(relation)
    predicate = query.selections.get(relation)
    if predicate is not None:
        rows = {
            row: cnt
            for row, cnt in rows.items()
            if predicate(dict(zip(atom.variables, row)))
        }
    return relation_cls(list(atom.variables), dict(rows))


def compute_botjoins(
    bound: BoundTree, parallel=None, shard_cache=None
) -> Dict[str, Relation]:
    """Botjoins ``K(v)`` for every node, in post-order (paper Eqn. 5/7).

    ``K(v) = γ_{A_v ∩ A_p(v)} r̃join(rel_v, {K(c) | c ∈ children(v)})``.
    For the root the grouping attribute set is empty, so ``K(root)`` is a
    zero-arity relation whose single count is ``|Q(D)|``.

    With an active ``parallel`` context each level's join+group runs
    hash-sharded across the worker pool and the per-shard partial botjoins
    are reduced on the coordinator; ``shard_cache`` (a
    :class:`~repro.engine.sharding.ShardMap`) keeps node/botjoin
    partitionings alive across passes (the maintained join state hands in
    its long-lived map so repeated reads re-use shard layouts).
    """
    tree = bound.tree
    botjoins: Dict[str, Relation] = {}
    sharded = parallel is not None and parallel.active
    for node_id in tree.post_order():
        children = tree.children(node_id)
        group_attrs = sorted(tree.shared_with_parent(node_id))
        if sharded:
            parts = [bound.relation(node_id)]
            parts.extend(botjoins[child] for child in children)
            keys = [f"node:{node_id}"]
            keys.extend(f"bot:{child}" for child in children)
            botjoins[node_id] = parallel.join_group(
                parts, group_attrs, cache=shard_cache, keys=keys
            )
        else:
            current = bound.relation(node_id)
            for child in children:
                current = join(current, botjoins[child])
            botjoins[node_id] = group_by(current, group_attrs)
    return botjoins


def compute_topjoins(
    bound: BoundTree,
    botjoins: Dict[str, Relation],
    parallel=None,
    shard_cache=None,
) -> Dict[str, Optional[Relation]]:
    """Topjoins ``J(v)`` for every node, in pre-order (paper Eqn. 8).

    ``J(root)`` is ``None`` (the complement of the whole tree is empty).
    For a node whose parent is the root the topjoin omits ``J(parent)``;
    otherwise ``J(v) = γ_{A_v ∩ A_p} r̃join(rel_p, J(p), {K(s) | s ∈ N(v)})``.
    ``parallel``/``shard_cache`` shard each level exactly as in
    :func:`compute_botjoins`.
    """
    tree = bound.tree
    topjoins: Dict[str, Optional[Relation]] = {tree.root: None}
    sharded = parallel is not None and parallel.active
    for node_id in tree.pre_order():
        if node_id == tree.root:
            continue
        parent = tree.parent(node_id)
        if parent is None:
            raise InternalError(f"non-root node {node_id} has no parent")
        parts: List[Relation] = [bound.relation(parent)]
        keys: List[Optional[str]] = [f"node:{parent}"]
        parent_top = topjoins[parent]
        if parent_top is not None:
            parts.append(parent_top)
            keys.append(f"top:{parent}")
        for sibling in tree.neighbours(node_id):
            parts.append(botjoins[sibling])
            keys.append(f"bot:{sibling}")
        group_attrs = sorted(tree.shared_with_parent(node_id))
        if sharded:
            topjoins[node_id] = parallel.join_group(
                parts, group_attrs, cache=shard_cache, keys=keys
            )
        else:
            topjoins[node_id] = group_by(join_all(parts), group_attrs)
    return topjoins


def count_bound(bound: BoundTree) -> int:
    """``|Q(D)|`` from a bound tree via one botjoin pass."""
    botjoins = compute_botjoins(bound)
    return botjoins[bound.tree.root].total_count()


def semijoin_reduce(bound: BoundTree) -> Dict[str, Relation]:
    """Full (two-pass) semijoin reduction of the node relations.

    After the bottom-up and top-down passes, every remaining tuple
    participates in at least one join result, so the final join phase never
    grows beyond the output size.  Returns the reduced node relations.
    """
    tree = bound.tree
    reduced = dict(bound.node_relations)
    for node_id in tree.post_order():
        for child in tree.children(node_id):
            reduced[node_id] = semijoin(reduced[node_id], reduced[child])
    for node_id in tree.pre_order():
        parent = tree.parent(node_id)
        if parent is not None:
            reduced[node_id] = semijoin(reduced[node_id], reduced[parent])
    return reduced


def evaluate_bound(bound: BoundTree) -> Relation:
    """The full bag join output of a bound tree."""
    reduced = semijoin_reduce(bound)
    result: Optional[Relation] = None
    for node_id in bound.tree.pre_order():
        rel = reduced[node_id]
        result = rel if result is None else join(result, rel)
    if result is None:
        raise InternalError("bound query has no nodes to evaluate")
    return result


def default_tree(query: ConjunctiveQuery, max_width: int = 3) -> DecompositionTree:
    """The tree the engine picks when the caller supplies none: GYO join
    tree for acyclic queries, automatic GHD (node size ≤ ``max_width``)
    otherwise.  The query must be connected (components are handled by the
    top-level functions)."""
    return auto_decompose(query, max_width=max_width)


def _component_trees(
    query: ConjunctiveQuery,
    tree: Optional[DecompositionTree],
    max_width: int = 3,
) -> List[Tuple[ConjunctiveQuery, DecompositionTree]]:
    if tree is not None:
        return [(query, tree)]
    components = query.connected_components()
    if len(components) == 1:
        return [(query, default_tree(query, max_width))]
    pairs: List[Tuple[ConjunctiveQuery, DecompositionTree]] = []
    for i, component in enumerate(components):
        sub = query.subquery(component, name=f"{query.name}#c{i}")
        pairs.append((sub, default_tree(sub, max_width)))
    return pairs


def count_query(
    query: ConjunctiveQuery, db: Database, tree: Optional[DecompositionTree] = None
) -> int:
    """``|Q(D)|`` under bag semantics.

    Disconnected queries multiply their components' counts (the join of
    attribute-disjoint components is a cross product).
    """
    total = 1
    for sub, sub_tree in _component_trees(query, tree):
        total *= count_bound(bind(sub, sub_tree, db))
        if total == 0:
            return 0
    return total


def evaluate_query(
    query: ConjunctiveQuery, db: Database, tree: Optional[DecompositionTree] = None
) -> Relation:
    """The full join output ``Q(D)`` as a bag relation."""
    result: Optional[Relation] = None
    for sub, sub_tree in _component_trees(query, tree):
        part = evaluate_bound(bind(sub, sub_tree, db))
        result = part if result is None else join(result, part)
    if result is None:
        raise InternalError("query has no connected components to evaluate")
    return result


def naive_join(query: ConjunctiveQuery, db: Database) -> Relation:
    """Left-deep join in body order — the brute-force oracle for tests."""
    parts = [query.bound_relation(db, rel) for rel in query.relation_names]
    return join_all(parts)
